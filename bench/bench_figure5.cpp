// Reproduces Figure 5: "Availability and security curves" — PA(C) falling
// and PS(C) rising as the check quorum sweeps 1..M, with the wide middle
// band where both are ~1. Rendered as an ASCII chart plus the numeric series
// (model and simulation overlay).
#include <cstdio>

#include "analysis/availability.hpp"
#include "bench_common.hpp"
#include "bench_main.hpp"
#include "util/table.hpp"

namespace wan {
namespace {

using bench::horizon;
using sim::Duration;

void run_curves(int m, double pi, bench::JsonEmitter& json) {
  const analysis::TradeoffCurves model = analysis::tradeoff_curves(m, pi);

  std::vector<double> sim_pa, sim_ps;
  for (int c = 1; c <= m; ++c) {
    workload::ScenarioConfig cfg;
    cfg.managers = m;
    cfg.app_hosts = 1;
    cfg.users = 1;
    cfg.partitions = workload::ScenarioConfig::Partitions::kPairwise;
    cfg.pi = pi;
    cfg.mean_down = Duration::seconds(30);
    cfg.protocol.check_quorum = c;
    cfg.seed = static_cast<std::uint64_t>(c) * 13 + 3;
    workload::Scenario s(cfg);
    workload::QuorumProbe probe(s, c, Duration::seconds(10));
    probe.start();
    s.run_for(horizon(Duration::hours(30), Duration::hours(3)));
    sim_pa.push_back(probe.result().pa());
    sim_ps.push_back(probe.result().ps());
  }

  char title[128];
  std::snprintf(title, sizeof(title),
                "Figure 5 — availability (PA, '*') and security (PS, 'o') vs "
                "check quorum C   [M=%d, Pi=%.1f]",
                m, pi);
  std::fputs(render_ascii_chart(title,
                                {{"PA (model)", '*', model.pa},
                                 {"PS (model)", 'o', model.ps}},
                                20)
                 .c_str(),
             stdout);

  Table t("Numeric series (model vs simulated probe):");
  t.set_header({"C", "PA(model)", "PA(sim)", "PS(model)", "PS(sim)"});
  for (int c = 1; c <= m; ++c) {
    const auto i = static_cast<std::size_t>(c - 1);
    json.record("M=" + std::to_string(m) + ",Pi=" + std::to_string(pi) +
                    ",C=" + std::to_string(c),
                {{"m", m},
                 {"pi", pi},
                 {"c", c},
                 {"pa_model", model.pa[i]},
                 {"pa_sim", sim_pa[i]},
                 {"ps_model", model.ps[i]},
                 {"ps_sim", sim_ps[i]}});
    t.add_row({Table::fmt(static_cast<std::int64_t>(c)),
               Table::fmt(model.pa[i]), Table::fmt(sim_pa[i]),
               Table::fmt(model.ps[i]), Table::fmt(sim_ps[i])});
  }
  t.print();

  std::printf("Balanced check quorum (max of min(PA,PS)): C = %d\n",
              analysis::balanced_check_quorum(m, pi));
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  const wan::bench::BenchInfo info{
      "figure5",
      "FIGURE 5 — Availability and security curves",
      "Hiltunen & Schlichting, ICDCS'97, Figure 5 (M=10 shown for both Pi)",
      "the curves cross near C = M/2; per the paper, \"there\n"
      "is a relatively large range of values of C around M/2 where both\n"
      "availability and security are very close to 1.\""};
  return wan::bench::bench_main(argc, argv, info,
                                [](wan::bench::JsonEmitter& json) {
    wan::run_curves(10, 0.1, json);
    std::printf("\n");
    wan::run_curves(10, 0.2, json);
  });
}
