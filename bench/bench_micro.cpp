// Microbenchmarks (google-benchmark) for the data-plane primitives: the
// per-message costs a real deployment of the protocol would pay. The paper's
// fast path is "check ACL_cache, allow" — these pin down what that costs.
#include <benchmark/benchmark.h>

#include "acl/cache.hpp"
#include "acl/store.hpp"
#include "analysis/availability.hpp"
#include "auth/authenticator.hpp"
#include "auth/credentials.hpp"
#include "metrics/histogram.hpp"
#include "quorum/quorum.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace wan {
namespace {

void BM_AclCacheHit(benchmark::State& state) {
  acl::AclCache cache;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const clk::LocalTime t0 = clk::LocalTime::from_nanos(0);
  for (std::uint32_t i = 0; i < n; ++i) {
    cache.insert(UserId(i), acl::RightSet(acl::Right::kUse),
                 t0 + sim::Duration::hours(1), acl::Version{1, HostId(0)}, t0);
  }
  std::uint32_t u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(UserId(u), t0));
    u = (u + 1) % n;
  }
}
BENCHMARK(BM_AclCacheHit)->Arg(16)->Arg(1024)->Arg(65536);

void BM_AclCacheMiss(benchmark::State& state) {
  acl::AclCache cache;
  const clk::LocalTime t0 = clk::LocalTime::from_nanos(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(UserId(1), t0));
  }
}
BENCHMARK(BM_AclCacheMiss);

void BM_AclCacheInsert(benchmark::State& state) {
  acl::AclCache cache;
  const clk::LocalTime t0 = clk::LocalTime::from_nanos(0);
  std::uint32_t u = 0;
  for (auto _ : state) {
    cache.insert(UserId(u++ % 4096), acl::RightSet(acl::Right::kUse),
                 t0 + sim::Duration::hours(1), acl::Version{1, HostId(0)}, t0);
  }
}
BENCHMARK(BM_AclCacheInsert);

void BM_AclStoreApply(benchmark::State& state) {
  acl::AclStore store;
  std::uint64_t v = 0;
  for (auto _ : state) {
    store.apply(acl::AclUpdate{UserId(static_cast<std::uint32_t>(v % 1024)),
                               acl::Right::kUse, acl::Op::kAdd,
                               acl::Version{++v, HostId(0)}});
  }
}
BENCHMARK(BM_AclStoreApply);

void BM_AclStoreSnapshot(benchmark::State& state) {
  acl::AclStore store;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    store.apply(acl::AclUpdate{UserId(static_cast<std::uint32_t>(i)),
                               acl::Right::kUse, acl::Op::kAdd,
                               acl::Version{i + 1, HostId(0)}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.snapshot());
  }
}
BENCHMARK(BM_AclStoreSnapshot)->Arg(128)->Arg(4096);

void BM_QuorumTracker(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    quorum::QuorumTracker tracker(m / 2 + 1);
    for (int i = 0; i < m; ++i) {
      benchmark::DoNotOptimize(tracker.record(HostId(static_cast<std::uint32_t>(i))));
    }
  }
}
BENCHMARK(BM_QuorumTracker)->Arg(5)->Arg(32);

void BM_SignAndVerify(benchmark::State& state) {
  Rng rng(1);
  const auth::KeyPair kp = auth::generate_keypair(rng);
  auth::KeyRegistry reg;
  reg.register_user(UserId(1), kp.public_key);
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    const auth::Signature sig = auth::sign(UserId(1), payload, kp.secret);
    benchmark::DoNotOptimize(reg.verify(UserId(1), payload, sig));
  }
}
BENCHMARK(BM_SignAndVerify)->Arg(64)->Arg(1024);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_after(sim::Duration::nanos(i), [] {});
    }
    benchmark::DoNotOptimize(sched.run_all());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerThroughput);

// The same workload through the handle-free post path: no shared_ptr<bool>
// cancellation flag per event, so this is the fire-and-forget cost that
// Network::deliver and the runtime seam's post() actually pay. The delta
// against BM_SchedulerThroughput is the per-event allocation saved.
void BM_SchedulerPostThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.post_after(sim::Duration::nanos(i), [] {});
    }
    benchmark::DoNotOptimize(sched.run_all());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerPostThroughput);

void BM_HistogramRecord(benchmark::State& state) {
  metrics::Histogram hist;
  Rng rng(2);
  for (auto _ : state) {
    hist.record_seconds(rng.next_exponential(0.05));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_AnalyticPa(benchmark::State& state) {
  for (auto _ : state) {
    for (int c = 1; c <= 10; ++c) {
      benchmark::DoNotOptimize(analysis::availability_pa(10, c, 0.1));
    }
  }
}
BENCHMARK(BM_AnalyticPa);

void BM_RngNextDouble(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_double());
  }
}
BENCHMARK(BM_RngNextDouble);

}  // namespace
}  // namespace wan

BENCHMARK_MAIN();
