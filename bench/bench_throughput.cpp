// Saturation throughput of the real-socket fabric backends.
//
// Unlike the simulation benches (which reproduce the paper's tables), this
// bench measures the implementation itself: how many authenticated access
// checks per second one process sustains when every check crosses the kernel
// as real UDP datagrams. A driver endpoint floods 4 app hosts with signed
// InvokeRequests (open loop, bounded in-flight window so the transport's
// bounded queue never sheds) and counts InvokeReply arrivals; each reply is
// one completed authenticate + access-check + respond cycle. Phase two
// keeps a live check load running while hammering manager 0 with pipelined
// grant/revoke storms — the revocation path (update quorum + RevokeNotify
// invalidations) under fire.
//
// Backend is selectable: `--backend reactor` (default; epoll +
// recvmmsg/sendmmsg batching), `--backend udp` (thread-per-direction
// baseline), or `--backend loopback` (no sockets — the ceiling imposed by
// everything above the fabric). The checked-in BENCH_throughput.json
// baseline is produced by the reactor backend; CI replays a short run and
// diffs the schema against it (.github/workflows/ci.yml, bench-smoke job).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "auth/authenticator.hpp"
#include "bench/bench_main.hpp"
#include "obs/metrics.hpp"
#include "proto/host.hpp"
#include "proto/wire.hpp"
#include "runtime/backend.hpp"
#include "runtime/env_options.hpp"
#include "runtime/socket_base.hpp"
#include "runtime/threaded_env.hpp"
#include "shard/shard_map.hpp"
#include "workload/scenario.hpp"

namespace wan::bench {
namespace {

using Clock = std::chrono::steady_clock;
using runtime::BackendKind;

constexpr AppId kApp{1};
constexpr std::uint32_t kDriverId = 999;
constexpr int kManagers = 3;
constexpr int kHosts = 4;

// --shards phase: the sharded rigs run 4 managers either as ONE group (every
// uncached check quorum fans out to all four) or as four singleton groups
// (the owner group is one manager). The flood flies distinct NON-granted
// users — only grants are cached (access_controller.cpp), so every check is
// a full authenticate + quorum round trip, which is the manager-tier load
// sharding exists to divide.
constexpr int kShardManagers = 4;
constexpr int kFloodUsersPerHost = 64;
constexpr std::uint32_t kFloodUserBase = 1000;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The whole deployment in one process: 3 managers, 4 app hosts, and the
/// driver endpoint, each on its own loop, sharing one fabric. Socket
/// backends self-wire every node id to the transport's bound port, so every
/// frame makes a real kernel round trip.
struct Rig {
  std::unique_ptr<runtime::Fabric> fabric;
  runtime::SocketTransport* socket = nullptr;
  ns::NameService names;
  auth::KeyRegistry keys;
  auth::KeyPair kp;
  std::vector<std::unique_ptr<runtime::ThreadedEnv>> envs;
  std::vector<std::unique_ptr<proto::ManagerHost>> managers;
  std::vector<std::unique_ptr<proto::AppHost>> hosts;
  std::vector<HostId> manager_ids;
  std::vector<HostId> host_ids;

  // Reply stream, fed by the driver endpoint's handler.
  std::atomic<std::uint64_t> replies{0};
  std::atomic<std::uint64_t> accepted{0};

  /// shard_groups == 0: the legacy 3-manager flat rig (C = 2).
  /// shard_groups >= 1: 4 managers, C = 1; 1 = one group owning everything,
  /// 4 = singleton groups behind a consistent-hash map, flood users keyed in.
  explicit Rig(BackendKind kind, int shard_groups = 0) {
    proto::register_wire_messages();
    const int nm = shard_groups > 0 ? kShardManagers : kManagers;
    for (int i = 0; i < nm; ++i) manager_ids.push_back(HostId(static_cast<std::uint32_t>(i)));
    for (int i = 0; i < kHosts; ++i) host_ids.push_back(HostId(static_cast<std::uint32_t>(100 + i)));

    runtime::EnvOptions opts;
    opts.backend = kind;
    opts.listen = "127.0.0.1:0";
    std::string error;
    fabric = runtime::make_fabric(opts, &error);
    if (fabric == nullptr) {
      std::fprintf(stderr, "fabric construction failed: %s\n", error.c_str());
      std::exit(2);
    }
    socket = runtime::fabric_as_socket(fabric.get());
    if (socket != nullptr) {
      const runtime::NodeAddress self{"127.0.0.1", socket->local_port()};
      for (const HostId id : manager_ids) socket->add_peer(id, self);
      for (const HostId id : host_ids) socket->add_peer(id, self);
      socket->add_peer(HostId(kDriverId), self);
    }

    proto::ProtocolConfig config;
    config.check_quorum = shard_groups > 0 ? 1 : 2;
    config.Te = sim::Duration::minutes(2);

    for (int i = 0; i < nm + kHosts + 1; ++i) {
      envs.push_back(std::make_unique<runtime::ThreadedEnv>(*fabric));
    }
    for (int i = 0; i < nm; ++i) {
      managers.push_back(std::make_unique<proto::ManagerHost>(
          manager_ids[static_cast<std::size_t>(i)],
          *envs[static_cast<std::size_t>(i)], clk::LocalClock::perfect(),
          config));
    }
    names.set_managers(kApp, manager_ids);
    shard::ShardMap map;
    if (shard_groups > 1) {
      std::vector<std::vector<HostId>> groups;
      for (const HostId id : manager_ids) groups.push_back({id});
      map = shard::ShardMap::ring(std::move(groups),
                                  static_cast<std::uint32_t>(4 * shard_groups),
                                  /*epoch=*/1);
      names.set_shard_map(kApp, map);
    }
    for (int i = 0; i < nm; ++i) {
      // A sharded manager's Managers(A) is its own group (singleton here).
      const std::vector<HostId> quorum_set =
          shard_groups > 1 ? std::vector<HostId>{manager_ids[static_cast<std::size_t>(i)]}
                           : manager_ids;
      envs[static_cast<std::size_t>(i)]->run_sync([this, i, &quorum_set, &map] {
        managers[static_cast<std::size_t>(i)]->manager().manage_app(
            kApp, quorum_set);
        if (!map.empty()) {
          managers[static_cast<std::size_t>(i)]->manager().set_shard_map(kApp,
                                                                         map);
        }
      });
    }

    // One user per host, all sharing one keypair: requests for host h carry
    // user 7+h, so per-user nonce floors stay strictly increasing per host.
    Rng rng{12345};
    kp = auth::generate_keypair(rng);
    for (int h = 0; h < kHosts; ++h) keys.register_user(user_of(h), kp.public_key);
    if (shard_groups > 0) {
      // Flood users authenticate but hold no grant, so their checks never
      // cache — each one is a live quorum round at the owning group.
      for (int u = 0; u < kHosts * kFloodUsersPerHost; ++u) {
        keys.register_user(UserId(kFloodUserBase + static_cast<std::uint32_t>(u)),
                           kp.public_key);
      }
    }

    for (int i = 0; i < kHosts; ++i) {
      auto& env = *envs[static_cast<std::size_t>(kManagers + i)];
      hosts.push_back(std::make_unique<proto::AppHost>(
          host_ids[static_cast<std::size_t>(i)], env,
          clk::LocalClock::perfect(), names, keys, config));
      env.run_sync([this, i] {
        hosts[static_cast<std::size_t>(i)]->controller().register_app(
            kApp, [](UserId, const std::string& p) { return p; });
      });
    }

    auto& driver_env = *envs.back();
    driver_env.transport().register_endpoint(
        HostId(kDriverId), [this](HostId, const net::MessagePtr& msg) {
          if (const auto* reply = net::message_cast<proto::InvokeReply>(msg)) {
            if (reply->accepted) accepted.fetch_add(1, std::memory_order_relaxed);
            replies.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }

  ~Rig() {
    if (socket != nullptr) {
      socket->shutdown();
    } else if (fabric != nullptr) {
      fabric->stop_all();
    }
  }

  static UserId user_of(int host_idx) {
    return UserId(static_cast<std::uint32_t>(7 + host_idx));
  }

  /// Submits one update at manager 0 and waits for its quorum outcome.
  bool barrier_update(acl::Op op, UserId user) {
    auto done = std::make_shared<std::atomic<bool>>(false);
    envs[0]->run_sync([this, op, user, done] {
      managers[0]->manager().submit_update(
          kApp, op, user, acl::Right::kUse,
          [done](const proto::UpdateOutcome&) { done->store(true); });
    });
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    while (!done->load()) {
      if (Clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }
};

/// Open-loop check driver with a bounded in-flight window. The window (plus
/// the replies it implies) stays under the transport's 1024-frame queue
/// limit, so saturation shows up as throughput, not queue_full shedding.
struct CheckDriver {
  /// flood = cycle kFloodUsersPerHost distinct non-granted users per host
  /// (every check misses the cache) instead of the four granted hot users.
  explicit CheckDriver(Rig& rig, bool flood = false)
      : rig_(rig), flood_(flood) {
    nonces_.assign(flood ? static_cast<std::size_t>(kHosts) * kFloodUsersPerHost
                         : kHosts,
                   1);
    cursors_.assign(kHosts, 0);
  }

  /// Sends signed InvokeRequests round-robin for `seconds`, then drains.
  /// Returns replies observed between start and drain end.
  struct Result {
    std::uint64_t sent = 0;
    std::uint64_t replies = 0;
    std::uint64_t accepted = 0;
    double elapsed = 0.0;
  };
  Result run(double seconds, std::uint64_t window,
             const std::atomic<bool>* abort = nullptr) {
    const std::uint64_t replies0 = rig_.replies.load();
    const std::uint64_t accepted0 = rig_.accepted.load();
    const auto t0 = Clock::now();
    const auto deadline =
        t0 + std::chrono::microseconds(static_cast<std::int64_t>(seconds * 1e6));
    std::uint64_t sent = 0;
    int h = 0;
    while (Clock::now() < deadline && (abort == nullptr || !abort->load())) {
      if (sent - (rig_.replies.load() - replies0) >= window) {
        std::this_thread::yield();
        continue;
      }
      send_one(h);
      ++sent;
      h = (h + 1) % kHosts;
    }
    // Drain: every request in flight either answers or times out of scope.
    const auto drain_deadline = Clock::now() + std::chrono::seconds(5);
    while (rig_.replies.load() - replies0 < sent &&
           Clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Result r;
    r.sent = sent;
    r.replies = rig_.replies.load() - replies0;
    r.accepted = rig_.accepted.load() - accepted0;
    r.elapsed = seconds_since(t0);
    return r;
  }

 private:
  void send_one(int h) {
    std::size_t slot = static_cast<std::size_t>(h);
    UserId user = Rig::user_of(h);
    if (flood_) {
      const int k = cursors_[static_cast<std::size_t>(h)]++ % kFloodUsersPerHost;
      slot = static_cast<std::size_t>(h) * kFloodUsersPerHost +
             static_cast<std::size_t>(k);
      user = UserId(kFloodUserBase + static_cast<std::uint32_t>(slot));
    }
    const std::uint64_t nonce = nonces_[slot]++;
    const auth::Signature sig = auth::sign(
        user, auth::Authenticator::signed_bytes("x", nonce), rig_.kp.secret);
    rig_.fabric->send(
        HostId(kDriverId), rig_.host_ids[static_cast<std::size_t>(h)],
        net::make_message<proto::InvokeRequest>(kApp, user, ++request_id_,
                                                nonce, sig, "x", 0));
  }

  Rig& rig_;
  bool flood_;
  std::vector<std::uint64_t> nonces_;
  std::vector<int> cursors_;
  std::uint64_t request_id_ = 0;
};

/// Pipelined grant/revoke chains at manager 0: each completion immediately
/// submits the next update for the same user, `chains` chains deep.
struct UpdateStorm {
  std::atomic<bool> stop{false};
  std::atomic<int> outstanding{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> revokes{0};
};

std::shared_ptr<UpdateStorm> start_update_storm(Rig& rig, int chains) {
  auto storm = std::make_shared<UpdateStorm>();
  auto fire = std::make_shared<std::function<void(int, bool)>>();
  *fire = [&rig, storm, fire](int user_idx, bool grant) {
    if (storm->stop.load()) {
      storm->outstanding.fetch_sub(1);
      return;
    }
    if (!grant) storm->revokes.fetch_add(1);
    rig.managers[0]->manager().submit_update(
        kApp, grant ? acl::Op::kAdd : acl::Op::kRevoke, Rig::user_of(user_idx),
        acl::Right::kUse,
        [storm, fire, user_idx, grant](const proto::UpdateOutcome&) {
          storm->completed.fetch_add(1);
          (*fire)(user_idx, !grant);
        });
  };
  storm->outstanding.store(chains);
  rig.envs[0]->run_sync([&, chains] {
    for (int c = 0; c < chains; ++c) (*fire)(c % kHosts, (c & 1) != 0);
  });
  return storm;
}

void stop_update_storm(Rig& rig, const std::shared_ptr<UpdateStorm>& storm,
                       std::shared_ptr<std::function<void(int, bool)>>* fire) {
  storm->stop.store(true);
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (storm->outstanding.load() > 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (void)rig;
  if (fire != nullptr && *fire != nullptr) **fire = nullptr;  // break cycle
}

// Phase 5 helper: total dissemination frames a 3-manager deployment spends
// revoking `users` rights cached on every one of `hosts` app hosts, under
// one fanout strategy. Runs on the deterministic simulation (the strategies
// sit above the fabric seam, so frame counts are backend-independent) and
// reads the process-global wan_revoke_fanout_frames_total counter as a
// delta around the revocation burst.
std::uint64_t fanout_frames(runtime::DisseminationKind dk, int hosts,
                            int users) {
  workload::ScenarioConfig cfg;
  cfg.managers = kManagers;
  cfg.app_hosts = hosts;
  cfg.users = users;
  cfg.constant_latency = true;
  cfg.const_latency = sim::Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = sim::Duration::seconds(30);
  cfg.protocol.dissemination.kind = dk;
  cfg.seed = 7;
  workload::Scenario s(cfg);
  for (int u = 0; u < users; ++u) s.grant(s.user(u), 0);
  s.run_for(sim::Duration::seconds(2));
  for (int h = 0; h < hosts; ++h) {
    for (int u = 0; u < users; ++u) s.check(h, s.user(u));
  }
  s.run_for(sim::Duration::seconds(5));
  obs::Counter& frames =
      obs::Registry::global().counter("wan_revoke_fanout_frames_total");
  const std::uint64_t before = frames.value();
  for (int u = 0; u < users; ++u) s.revoke(s.user(u), 0);
  s.run_for(sim::Duration::seconds(10));
  return frames.value() - before;
}

int throughput_main(int argc, char** argv, BackendKind kind, bool shards) {
  const BenchInfo info{
      "throughput",
      "SATURATION THROUGHPUT — batched socket I/O under check + revocation "
      "storms",
      "implementation artifact: authenticated checks/sec over the reactor "
      "(epoll + recvmmsg/sendmmsg) fabric; no paper table",
      "check_storm.checks_per_sec is completed authenticate+check+reply "
      "cycles per second over real localhost UDP (every check = 2 datagrams "
      "through one socket). revocation_storm runs pipelined grant/revoke "
      "quorums at manager 0 under live check load. backend_kind: 1=loopback, "
      "2=udp, 3=reactor (select with --backend). The reactor run is the "
      "checked-in BENCH_throughput.json baseline; regressions >20% fail the "
      "CI bench-smoke diff."};
  return bench_main(argc, argv, info, [kind, shards](JsonEmitter& json) {
    const double storm_secs = fast_mode() ? 0.8 : 3.0;
    const std::uint64_t window = 256;
    const double backend_field = kind == BackendKind::kLoopback ? 1.0
                                 : kind == BackendKind::kUdp    ? 2.0
                                                                : 3.0;
    Rig rig(kind);

    // Warm-up: grant every user, then one check per host to populate caches
    // (and the per-user nonce floors) so the storm measures the steady state.
    for (int h = 0; h < kHosts; ++h) {
      if (!rig.barrier_update(acl::Op::kAdd, Rig::user_of(h))) {
        std::fprintf(stderr, "warm-up grant %d never reached quorum\n", h);
        std::exit(2);
      }
    }
    CheckDriver driver(rig);
    const auto warm = driver.run(0.2, 16);
    if (warm.accepted == 0) {
      std::fprintf(stderr, "warm-up checks never succeeded\n");
      std::exit(2);
    }

    // Phase 1: open-loop check storm, caches hot. The host-side decision
    // latency histogram (AccessController::emit observes requested->decided
    // per decision) is reset here so its percentiles cover exactly this
    // storm, not the warm-up.
    obs::Histo& check_latency =
        obs::Registry::global().histogram("wan_check_latency_seconds");
    check_latency.reset();
    const auto storm = driver.run(storm_secs, window);
    const metrics::Histogram latency_snap = check_latency.snapshot();
    const double checks_per_sec =
        static_cast<double>(storm.replies) / storm.elapsed;
    std::printf("\n  check storm   (%4.1fs, window %3llu): %9.0f checks/sec"
                "  (%llu replies, %llu accepted, %llu sent)\n",
                storm.elapsed, static_cast<unsigned long long>(window),
                checks_per_sec,
                static_cast<unsigned long long>(storm.replies),
                static_cast<unsigned long long>(storm.accepted),
                static_cast<unsigned long long>(storm.sent));
    json.record("check_storm", {{"backend_kind", backend_field},
                                {"checks_per_sec", checks_per_sec},
                                {"replies", static_cast<double>(storm.replies)},
                                {"accepted", static_cast<double>(storm.accepted)},
                                {"seconds", storm.elapsed},
                                {"window", static_cast<double>(window)}});

    // Host-side per-decision latency during phase 1, from the
    // wan_check_latency_seconds histogram (cache-hot, so this is the signed
    // request -> local decide path, not a quorum round). Field names avoid
    // `checks_per_sec` so the CI regression gate keys only on the rate row.
    const double lat_p50 = latency_snap.quantile_seconds(0.50);
    const double lat_p99 = latency_snap.quantile_seconds(0.99);
    std::printf("  check latency (%llu samples):      p50 %8.1fus  "
                "p99 %8.1fus  max %8.1fus\n",
                static_cast<unsigned long long>(latency_snap.count()),
                lat_p50 * 1e6, lat_p99 * 1e6,
                latency_snap.max_seconds() * 1e6);
    json.record("check_latency",
                {{"p50_s", lat_p50},
                 {"p99_s", lat_p99},
                 {"max_s", latency_snap.max_seconds()},
                 {"samples", static_cast<double>(latency_snap.count())},
                 {"seconds", storm.elapsed}});

    // Phase 2: revocation storm — pipelined grant/revoke quorums at manager
    // 0 while a lighter check load keeps caches live (so RevokeNotify
    // invalidations actually have entries to kill).
    auto update_storm = start_update_storm(rig, /*chains=*/16);
    const auto bg = driver.run(storm_secs, 64);
    stop_update_storm(rig, update_storm, nullptr);
    const double updates_per_sec =
        static_cast<double>(update_storm->completed.load()) / bg.elapsed;
    const double bg_checks_per_sec =
        static_cast<double>(bg.replies) / bg.elapsed;
    std::printf("  revoke storm  (%4.1fs, 16 chains):  %9.0f updates/sec"
                "  (%llu quorums, %llu revokes, %0.0f checks/sec alongside)\n",
                bg.elapsed, updates_per_sec,
                static_cast<unsigned long long>(update_storm->completed.load()),
                static_cast<unsigned long long>(update_storm->revokes.load()),
                bg_checks_per_sec);
    json.record("revocation_storm",
                {{"backend_kind", backend_field},
                 {"updates_per_sec", updates_per_sec},
                 {"updates", static_cast<double>(update_storm->completed.load())},
                 {"revokes", static_cast<double>(update_storm->revokes.load())},
                 {"checks_per_sec", bg_checks_per_sec},
                 {"seconds", bg.elapsed}});

    // Phase 3 (reactor runs only): the same check storm, briefly, on the
    // thread-per-direction udp backend — the batching speedup as one number.
    // Field names deliberately avoid `checks_per_sec`: the ratio row records
    // relative backend cost, it is not a machine-comparable rate the CI
    // regression gate should key on.
    if (kind == BackendKind::kReactor) {
      const double ratio_secs = fast_mode() ? 0.5 : 1.5;
      Rig udp_rig(BackendKind::kUdp);
      for (int h = 0; h < kHosts; ++h) {
        if (!udp_rig.barrier_update(acl::Op::kAdd, Rig::user_of(h))) {
          std::fprintf(stderr, "udp ratio grant %d never reached quorum\n", h);
          std::exit(2);
        }
      }
      CheckDriver udp_driver(udp_rig);
      (void)udp_driver.run(0.2, 16);  // warm caches and nonce floors
      // Window 64, not 256: the per-direction-thread backend saturates its
      // socket buffers earlier, and a dropped reply would stall the drain.
      const auto udp_storm = udp_driver.run(ratio_secs, 64);
      const double udp_checks_per_sec =
          static_cast<double>(udp_storm.replies) / udp_storm.elapsed;
      const double reactor_vs_udp =
          udp_checks_per_sec > 0.0 ? checks_per_sec / udp_checks_per_sec : 0.0;
      std::printf("  backend ratio (%4.1fs udp run):    %9.0f udp checks/sec"
                  "  (reactor/udp = %.2fx)\n",
                  udp_storm.elapsed, udp_checks_per_sec, reactor_vs_udp);
      json.record("backend_ratio",
                  {{"udp_checks_per_sec", udp_checks_per_sec},
                   {"reactor_vs_udp", reactor_vs_udp},
                   {"seconds", udp_storm.elapsed}});
    }

    // Phase 4 (--shards): aggregate UNCACHED checks/sec with the same four
    // managers deployed as one group vs four singleton shard groups. With
    // one group every check quorum fans out to all four managers (fanout
    // kAll); with singleton groups the shard map routes each check to the
    // one owning manager, so the manager tier does a quarter of the datagram
    // work per check. Field names deliberately avoid bare `checks_per_sec`
    // so the CI regression gate keeps keying on the flat-path rows only.
    if (shards) {
      const double shard_secs = fast_mode() ? 0.6 : 2.0;
      double rate[2] = {0.0, 0.0};
      double last_elapsed = 0.0;
      for (int cfg = 0; cfg < 2; ++cfg) {
        const int groups = cfg == 0 ? 1 : 4;
        Rig srig(kind, groups);
        CheckDriver sdriver(srig, /*flood=*/true);
        const auto warm = sdriver.run(0.2, 16);
        if (warm.replies == 0) {
          std::fprintf(stderr, "shard warm-up checks never answered\n");
          std::exit(2);
        }
        // Window 64, not 256: an uncached check is up to 10 datagrams
        // through the shared socket (invoke + 4 queries + 4 responses +
        // reply), so the wide window would overrun the transport's
        // 1024-frame queue and shed.
        const auto res = sdriver.run(shard_secs, 64);
        rate[cfg] = static_cast<double>(res.replies) / res.elapsed;
        last_elapsed = res.elapsed;
      }
      const double scaling = rate[0] > 0.0 ? rate[1] / rate[0] : 0.0;
      std::printf("  shard scaling (%4.1fs uncached):   %9.0f -> %.0f "
                  "checks/sec  (4 shards / 1 = %.2fx)\n",
                  last_elapsed, rate[0], rate[1], scaling);
      json.record("shard_scaling", {{"checks_per_sec_s1", rate[0]},
                                    {"checks_per_sec_s4", rate[1]},
                                    {"scaling_x", scaling},
                                    {"seconds", last_elapsed}});
      if (!fast_mode() && scaling < 1.5) {
        std::fprintf(stderr,
                     "shard scaling %.2fx is below the 1.5x floor — sharding "
                     "is not dividing the manager-tier load\n",
                     scaling);
        std::exit(2);
      }
    }

    // Phase 5: dissemination frame economics — frames the deployment spends
    // per mass revocation (4 users cached on 32 hosts) under each fanout
    // strategy. Deterministic sim, so these are exact counts, not rates;
    // field names avoid `checks_per_sec` so the CI regression gate ignores
    // this row beyond schema drift.
    {
      constexpr int kFanHosts = 32;
      constexpr int kFanUsers = 4;
      const std::uint64_t uni = fanout_frames(
          runtime::DisseminationKind::kUnicast, kFanHosts, kFanUsers);
      const std::uint64_t coal = fanout_frames(
          runtime::DisseminationKind::kCoalesced, kFanHosts, kFanUsers);
      const std::uint64_t tree = fanout_frames(
          runtime::DisseminationKind::kTree, kFanHosts, kFanUsers);
      const double per_rev = 1.0 / kFanUsers;
      std::printf("  fanout frames (32 hosts, per rev): %6.1f unicast  "
                  "%6.1f coalesced (%.1fx)  %6.1f tree (%.1fx)\n",
                  static_cast<double>(uni) * per_rev,
                  static_cast<double>(coal) * per_rev,
                  coal > 0 ? static_cast<double>(uni) / static_cast<double>(coal)
                           : 0.0,
                  static_cast<double>(tree) * per_rev,
                  tree > 0 ? static_cast<double>(uni) / static_cast<double>(tree)
                           : 0.0);
      json.record(
          "fanout_frames_per_revocation",
          {{"cached_hosts", static_cast<double>(kFanHosts)},
           {"unicast", static_cast<double>(uni) * per_rev},
           {"coalesced", static_cast<double>(coal) * per_rev},
           {"tree", static_cast<double>(tree) * per_rev},
           {"coalesced_savings_x",
            coal > 0 ? static_cast<double>(uni) / static_cast<double>(coal)
                     : 0.0},
           {"tree_savings_x",
            tree > 0 ? static_cast<double>(uni) / static_cast<double>(tree)
                     : 0.0}});
    }
  });
}

}  // namespace
}  // namespace wan::bench

int main(int argc, char** argv) {
  // --backend / --shards are bench-specific; strip them before the shared
  // flag parser.
  std::string backend = "reactor";
  bool shards = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--backend" && i + 1 < argc) {
      backend = argv[++i];
      continue;
    }
    if (std::string(argv[i]) == "--shards") {
      shards = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  wan::runtime::BackendKind kind = wan::runtime::BackendKind::kReactor;
  if (!wan::runtime::parse_backend(backend, &kind) ||
      kind == wan::runtime::BackendKind::kSim) {
    std::fprintf(stderr,
                 "--backend must be loopback, udp, or reactor (got '%s')\n",
                 backend.c_str());
    return 2;
  }
  return wan::bench::throughput_main(static_cast<int>(args.size()),
                                     args.data(), kind, shards);
}
