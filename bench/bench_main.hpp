// Shared entry point of the bench binaries.
//
// Every bench used to repeat the same main() boilerplate: scan argv for
// --json by hand, print the banner, run the measurements, print a reading
// guide, and turn json.write() into an exit code. The copies drifted (some
// accepted `--json` with no operand, none rejected typos, none had --help).
// bench_main() centralizes all of it on the shared tools/cli.hpp parser; a
// bench binary is now just a BenchInfo plus a body:
//
//   int main(int argc, char** argv) {
//     const wan::bench::BenchInfo info{
//         "table1", "TABLE 1 — ...", "Hiltunen & Schlichting ...",
//         "how to read the output ..."};
//     return wan::bench::bench_main(argc, argv, info,
//                                   [](wan::bench::JsonEmitter& json) {
//       // measurements; record() rows on json as they print
//     });
//   }
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "bench_common.hpp"
#include "tools/cli.hpp"

namespace wan::bench {

struct BenchInfo {
  const char* name;    ///< JSON "bench" field and --help program name
  const char* title;   ///< banner headline
  const char* source;  ///< the paper artifact this bench reproduces
  /// Printed after the body as "Reading guide: ..." (nullptr = none).
  const char* reading_guide = nullptr;
};

/// Parses the common bench flags (--json PATH, auto --help), prints the
/// banner, runs `body`, prints the reading guide, and writes the JSON
/// document. Exit code 2 means bad flags or an unwritable --json path.
inline int bench_main(int argc, char** argv, const BenchInfo& info,
                      const std::function<void(JsonEmitter&)>& body) {
  std::string json_path;
  cli::Parser cli(info.name,
                  std::string("Reproduces: ") + info.source +
                      "\nSet WAN_BENCH_FAST=1 for shorter (noisier) simulated "
                      "horizons.");
  cli.add_string("--json", "PATH",
                 "write a machine-readable result summary to PATH",
                 &json_path);
  if (!cli.parse(argc, argv)) return 2;

  JsonEmitter json(info.name, json_path);
  print_header(info.title, info.source);
  body(json);
  if (info.reading_guide != nullptr) {
    std::printf("\nReading guide: %s\n", info.reading_guide);
  }
  return json.write() ? 0 : 2;
}

}  // namespace wan::bench
