// Reproduces the protocol's central guarantee (§3.2/§3.3): a revoked right is
// unusable everywhere within Te of the revoke's update-quorum instant — under
// pairwise partitions, packet loss, and drifting clocks.
//
// For each Te, users are cyclically revoked and re-granted while hosts keep
// checking; every access allowed after a revoke's quorum instant is scored by
// its lateness. The distribution's maximum must stay below Te (the bound);
// its typical value is far smaller because RevokeNotify actively flushes
// caches wherever the network permits.
#include <cstdio>
#include <unordered_map>

#include "bench_common.hpp"
#include "bench_main.hpp"
#include "obs/te_probe.hpp"
#include "obs/trace.hpp"
#include "sim/timer.hpp"
#include "metrics/histogram.hpp"
#include "util/table.hpp"

namespace wan {
namespace {

using bench::horizon;
using sim::Duration;
using sim::TimePoint;

struct Result {
  std::uint64_t revokes = 0;
  std::uint64_t late_allows = 0;   ///< allowed accesses after a revoke quorum
  std::uint64_t violations = 0;    ///< lateness > Te (must be zero)
  double mean_lateness = 0.0;
  double p99_lateness = 0.0;
  double max_lateness = 0.0;
};

Result run(Duration te, double pi, std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.managers = 5;
  cfg.app_hosts = 3;
  cfg.users = 6;
  cfg.partitions = workload::ScenarioConfig::Partitions::kPairwise;
  cfg.pi = pi;
  cfg.mean_down = Duration::seconds(20);
  cfg.loss = 0.02;
  cfg.drifting_clocks = true;
  cfg.protocol.clock_bound_b = 1.05;
  cfg.protocol.check_quorum = 3;
  cfg.protocol.Te = te;
  cfg.protocol.max_attempts = 2;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.seed = seed;
  workload::Scenario s(cfg);

  Result result;
  metrics::Histogram lateness;
  std::unordered_map<std::uint32_t, TimePoint> revoked_at;  // user -> quorum t
  std::unordered_map<std::uint32_t, std::uint64_t> op_epoch;  // staleness guard

  for (int h = 0; h < s.host_count(); ++h) {
    s.host(h).controller().set_decision_observer(
        [&](const proto::AccessDecision& d) {
          if (!d.allowed) return;
          const auto it = revoked_at.find(d.user.value());
          if (it == revoked_at.end()) return;
          const double late = (d.decided - it->second).to_seconds();
          if (late <= 0.0) return;
          ++result.late_allows;
          lateness.record_seconds(late);
          if (late > te.to_seconds()) ++result.violations;
        });
  }

  // Everyone granted up front.
  for (int u = 0; u < s.user_count(); ++u) s.grant(s.user(u));
  s.run_for(Duration::seconds(10));

  // Access pressure.
  workload::DriverConfig dcfg;
  dcfg.access_rate_per_host = 2.0;
  dcfg.manager_ops_per_second = 0.0;  // we do the ops ourselves
  dcfg.initially_granted = 0.0;
  workload::Driver driver(s, dcfg, seed + 7);
  driver.start();

  // Revoke/re-grant cycle: every Te one user flips state. A revoked user is
  // re-granted on its next turn (a full sweep later), leaving ample time for
  // late allows to surface; the quorum instant comes from the manager's
  // UpdateOutcome directly.
  Rng rng(seed + 13);
  int next_user = 0;
  sim::PeriodicTimer cycle(s.scheduler());
  cycle.start(te, [&] {
    const int u = next_user;
    next_user = (next_user + 1) % s.user_count();
    const int mgr = static_cast<int>(rng.next_below(5));
    const auto uid = s.user(u);
    const std::uint64_t epoch = ++op_epoch[uid.value()];
    if (revoked_at.contains(uid.value())) {
      revoked_at.erase(uid.value());
      s.grant(uid, mgr);
    } else {
      ++result.revokes;
      auto& module = s.manager(mgr).manager();
      module.submit_update(
          s.app(), acl::Op::kRevoke, uid, acl::Right::kUse,
          [&revoked_at, &op_epoch, uid, epoch](const proto::UpdateOutcome& o) {
            // Ignore a quorum completing only after the next op superseded it.
            if (op_epoch[uid.value()] == epoch) {
              revoked_at[uid.value()] = o.quorum_at;
            }
          });
    }
  });

  s.run_for(horizon(Duration::hours(4), Duration::minutes(40)));
  result.mean_lateness = lateness.mean_seconds();
  result.p99_lateness = lateness.quantile_seconds(0.99);
  result.max_lateness = lateness.max_seconds();
  return result;
}

// Deterministic worst case: the host caches a grant, is immediately cut off
// from every manager (so RevokeNotify can never arrive), and runs the
// slowest admissible clock (rate 1/b). The last allowed access then rides
// the cache entry to the brink of its expiry — lateness approaches but never
// crosses Te.
struct WorstCase {
  double last_allowed_lateness;  ///< seconds after the revoke quorum
  double bound;
};

WorstCase worst_case(Duration te, double b, std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 1;
  cfg.users = 1;
  cfg.partitions = workload::ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = te;
  cfg.protocol.clock_bound_b = b;
  cfg.protocol.max_attempts = 1;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.seed = seed;
  workload::Scenario s(cfg);
  // Worst admissible clock: b times slower than real time.
  // (Scenario samples clocks only when drifting_clocks is set; the perfect
  // clock is already the worst case for b = 1.0. For b > 1 we emulate the
  // slow clock by noting expiry scales exactly linearly: te local units on a
  // rate-1/b clock take te * b real seconds — the controller computes
  // te = Te / b, so real expiry <= Te either way. We run with the perfect
  // clock and report the analytic worst case alongside.)
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(2));  // cache populated

  for (const HostId m : s.manager_ids()) {
    s.scripted().cut_link(s.host_ids()[0], m);
  }
  std::optional<TimePoint> quorum_at;
  auto& module = s.manager(0).manager();
  module.submit_update(s.app(), acl::Op::kRevoke, s.user(0), acl::Right::kUse,
                       [&](const proto::UpdateOutcome& o) { quorum_at = o.quorum_at; });
  s.run_for(Duration::seconds(2));

  double last_allowed = -1.0;
  for (int i = 0; i < 4000; ++i) {
    s.check(0, s.user(0), [&](const proto::AccessDecision& d) {
      if (d.allowed) last_allowed = d.decided.to_seconds();
    });
    s.run_for(Duration::millis(100));
    // Stop probing well past the bound.
    if (s.scheduler().now().to_seconds() >
        quorum_at->to_seconds() + te.to_seconds() * 1.5) {
      break;
    }
  }
  return WorstCase{last_allowed - quorum_at->to_seconds(), te.to_seconds()};
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  const wan::bench::BenchInfo info{
      "revocation",
      "REVOCATION TIME BOUND — lateness of post-revoke accesses vs Te",
      "Hiltunen & Schlichting, ICDCS'97, §3.2-3.3 (time-bounded revocation)",
      "violations must be 0 — no access is allowed more than\n"
      "Te after a revoke's quorum instant, despite partitions and clock\n"
      "drift. Typical lateness is far below the bound because RevokeNotify\n"
      "flushes caches proactively; the bound only binds when the notify\n"
      "cannot be delivered (partitioned host), where max -> Te as the cache\n"
      "entry rides out its full expiry period."};
  return wan::bench::bench_main(argc, argv, info,
                                [](wan::bench::JsonEmitter& json) {
  using wan::Table;
  Table t;
  t.set_header({"Te", "Pi", "revokes", "post-quorum allows", "mean late (s)",
                "p99 late (s)", "max late (s)", "bound Te (s)", "violations"});
  std::uint64_t seed = 1;
  for (const int te_s : {30, 60, 120}) {
    for (const double pi : {0.1, 0.25}) {
      const auto r = wan::run(wan::sim::Duration::seconds(te_s), pi, seed++);
      json.record("Te=" + std::to_string(te_s) + "s,Pi=" + std::to_string(pi),
                  {{"te_s", te_s},
                   {"pi", pi},
                   {"revokes", static_cast<double>(r.revokes)},
                   {"late_allows", static_cast<double>(r.late_allows)},
                   {"mean_late_s", r.mean_lateness},
                   {"p99_late_s", r.p99_lateness},
                   {"max_late_s", r.max_lateness},
                   {"violations", static_cast<double>(r.violations)}});
      t.add_row({std::to_string(te_s) + "s", Table::fmt(pi, 2),
                 Table::fmt(r.revokes), Table::fmt(r.late_allows),
                 Table::fmt(r.mean_lateness, 3), Table::fmt(r.p99_lateness, 3),
                 Table::fmt(r.max_lateness, 3),
                 Table::fmt(static_cast<double>(te_s), 1),
                 Table::fmt(r.violations)});
    }
  }
  t.print();

  Table w("\nDeterministic worst case — host cut from ALL managers right after\n"
          "caching, so only expiry protects (RevokeNotify undeliverable):");
  w.set_header({"Te", "b", "last allowed access after quorum (s)", "bound (s)",
                "within bound"});
  for (const int te_s : {30, 60, 120}) {
    for (const double b : {1.0, 1.05}) {
      // The span tracer measures the same bound from the OUTSIDE — pure
      // span-stream analysis, independent of the bench's own bookkeeping.
      // The two must agree that the bound held.
      wan::obs::Tracer tracer;
      wan::WorstCase wc{};
      {
        const wan::obs::TracerScope scope(&tracer);
        wc = wan::worst_case(wan::sim::Duration::seconds(te_s), b,
                             static_cast<std::uint64_t>(te_s));
      }
      const wan::obs::TeReport te_report = wan::obs::TeProbe::analyze(
          tracer.events(), wan::sim::Duration::seconds(te_s));
      json.record("worst-case,Te=" + std::to_string(te_s) + "s",
                  {{"te_s", te_s},
                   {"b", b},
                   {"last_allowed_lateness_s", wc.last_allowed_lateness},
                   {"bound_s", wc.bound},
                   {"empirical_te_max_s", te_report.max_seconds},
                   {"empirical_te_revocations",
                    static_cast<double>(te_report.revocations)},
                   {"empirical_te_violations",
                    static_cast<double>(te_report.violations)}});
      w.add_row({std::to_string(te_s) + "s", Table::fmt(b, 2),
                 Table::fmt(wc.last_allowed_lateness, 2),
                 Table::fmt(wc.bound, 1),
                 wc.last_allowed_lateness <= wc.bound ? "yes" : "NO"});
    }
  }
  w.print();
  });
}
