// Reproduces the §4.1 overhead claim: "The performance overhead of the
// access control algorithm is naturally O(C/Te), since the access rights
// have to be checked every Te time units and checking them involves
// communication with at least C managers."
//
// Two sweeps on a healthy network with every user continuously active (so
// every (host, user) pair re-validates once per expiry period):
//   1. Te sweep at fixed C — measured control-message rate vs the 2C/te model
//   2. C sweep at fixed Te — ditto
// The exact-quorum fanout is used so the model constant is literally 2C
// (C queries + C responses per re-validation).
#include <cstdio>

#include "analysis/overhead_model.hpp"
#include "bench_common.hpp"
#include "bench_main.hpp"
#include "util/table.hpp"

namespace wan {
namespace {

using bench::horizon;
using sim::Duration;

struct Measured {
  double control_rate;   ///< QueryRequest+QueryResponse per second
  double model_rate;     ///< active_pairs * 2C / te
  double cache_hit_rate;
};

Measured run(Duration te_target, int check_quorum, std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.managers = 5;
  cfg.app_hosts = 2;
  cfg.users = 4;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(20);
  cfg.protocol.check_quorum = check_quorum;
  cfg.protocol.fanout = proto::QueryFanout::kExactQuorum;
  cfg.protocol.Te = te_target;
  cfg.protocol.clock_bound_b = 1.0;
  cfg.protocol.cache_idle_limit = Duration::hours(10);  // no idle eviction
  cfg.seed = seed;
  workload::Scenario s(cfg);

  workload::DriverConfig dcfg;
  dcfg.access_rate_per_host = 4.0;  // every pair stays warm (<< te between uses)
  dcfg.manager_ops_per_second = 0.0;
  dcfg.initially_granted = 1.0;
  workload::Driver driver(s, dcfg, seed + 1);
  driver.start();

  // Warm up one full expiry period, then measure over a long window.
  s.run_for(te_target + Duration::seconds(5));
  s.network().reset_stats();
  s.collector().reset();
  const Duration window = horizon(Duration::hours(2), Duration::minutes(20));
  s.run_for(window);

  const auto& stats = s.network().stats();
  const auto by_type = stats.sent_by_type();
  const auto queries =
      by_type.count("QueryRequest") ? by_type.at("QueryRequest") : 0;
  const auto responses =
      by_type.count("QueryResponse") ? by_type.at("QueryResponse") : 0;
  const double rate =
      static_cast<double>(queries + responses) / window.to_seconds();
  const double active_pairs = 2.0 * 4.0;  // hosts x users
  const double model =
      active_pairs * analysis::overhead_c_over_te(
                         check_quorum, cfg.protocol.expiry_period());
  const auto& rep = s.collector().report();
  const double hits =
      static_cast<double>(s.collector().path_count(proto::DecisionPath::kCacheHit));
  return Measured{rate, model,
                  rep.total ? hits / static_cast<double>(rep.total) : 0.0};
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  const wan::bench::BenchInfo info{
      "overhead",
      "OVERHEAD — control-message rate is O(C/Te)",
      "Hiltunen & Schlichting, ICDCS'97, §4.1 (complexity discussion)",
      "ratios ~1.0 confirm the O(C/Te) law; the cache-hit\n"
      "rate shows why per-access cost stays negligible (\"increasing Te\n"
      "reduces the overall overhead ... but also increases the potential\n"
      "delay when an access right is revoked\")."};
  return wan::bench::bench_main(argc, argv, info,
                                [](wan::bench::JsonEmitter& json) {
  using wan::Table;
  {
    Table t("\nSweep 1: Te varies, C = 3  (rate should halve when Te doubles):");
    t.set_header({"Te", "measured msg/s", "model 2C/te msg/s", "ratio",
                  "cache-hit rate"});
    for (const int te_s : {30, 60, 120, 240, 480}) {
      const auto m = wan::run(wan::sim::Duration::seconds(te_s), 3,
                              static_cast<std::uint64_t>(te_s));
      json.record("Te=" + std::to_string(te_s) + "s,C=3",
                  {{"te_s", te_s},
                   {"measured_msgs_per_s", m.control_rate},
                   {"model_msgs_per_s", m.model_rate},
                   {"cache_hit_rate", m.cache_hit_rate}});
      t.add_row({std::to_string(te_s) + "s", Table::fmt(m.control_rate, 4),
                 Table::fmt(m.model_rate, 4),
                 Table::fmt(m.control_rate / m.model_rate, 3),
                 Table::fmt(m.cache_hit_rate, 4)});
    }
    t.print();
  }
  {
    Table t("\nSweep 2: C varies, Te = 120s  (rate should scale linearly in C):");
    t.set_header({"C", "measured msg/s", "model 2C/te msg/s", "ratio",
                  "cache-hit rate"});
    for (const int c : {1, 2, 3, 4, 5}) {
      const auto m = wan::run(wan::sim::Duration::seconds(120), c,
                              static_cast<std::uint64_t>(c) + 100);
      json.record("Te=120s,C=" + std::to_string(c),
                  {{"c", c},
                   {"measured_msgs_per_s", m.control_rate},
                   {"model_msgs_per_s", m.model_rate},
                   {"cache_hit_rate", m.cache_hit_rate}});
      t.add_row({std::to_string(c), Table::fmt(m.control_rate, 4),
                 Table::fmt(m.model_rate, 4),
                 Table::fmt(m.control_rate / m.model_rate, 3),
                 Table::fmt(m.cache_hit_rate, 4)});
    }
    t.print();
  }
  });
}
