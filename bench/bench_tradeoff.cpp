// Strategy ablation (§3.3 + §4.2): the quorum protocol (security-first and
// availability-first policies), the freeze strategy, and the three baseline
// designs, all run under IDENTICAL pairwise-partition regimes and workload
// shape, scored on availability, security, and message overhead.
//
// Expected shape (the paper's argument):
//   quorum/deny      — zero security violations, high availability
//   quorum/allow(R)  — higher availability, bounded-but-nonzero leakage
//   freeze           — zero violations, availability collapses as Pi grows
//   full-replication — fast checks, no revocation bound (violations grow
//                      without limit on partitioned hosts), heavy update cost
//   local-only       — no violations but poor availability (all M needed to
//                      find updates) and O(M) checks
//   eventual         — available and cheap, but unbounded staleness
#include <cstdio>
#include <memory>

#include "baseline/baseline_system.hpp"
#include "sim/timer.hpp"
#include "runtime/sim_env.hpp"
#include "bench_common.hpp"
#include "bench_main.hpp"
#include "metrics/collector.hpp"
#include "util/table.hpp"

namespace wan {
namespace {

using bench::horizon;
using sim::Duration;

struct RunResult {
  double availability;
  double security;
  std::uint64_t violations;
  double msgs_per_second;
  double mean_check_latency;
};

constexpr int kManagers = 5;
constexpr int kHosts = 3;
constexpr int kUsers = 8;
const Duration kTe = Duration::seconds(60);

enum class ProtoVariant { kDeny, kAllow, kFreeze, kExactFanout };

RunResult run_protocol(ProtoVariant variant, double pi, std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.managers = kManagers;
  cfg.app_hosts = kHosts;
  cfg.users = kUsers;
  cfg.partitions = workload::ScenarioConfig::Partitions::kPairwise;
  cfg.pi = pi;
  cfg.mean_down = Duration::seconds(25);
  cfg.protocol.check_quorum = 3;
  cfg.protocol.Te = kTe;
  cfg.protocol.max_attempts = 2;
  cfg.protocol.query_timeout = Duration::seconds(1);
  if (variant == ProtoVariant::kAllow) {
    cfg.protocol.exhausted_policy = proto::ExhaustedPolicy::kAllow;
  }
  if (variant == ProtoVariant::kExactFanout) {
    // Design-choice ablation: query exactly C managers per attempt instead
    // of all M. Cheaper in messages (the literal O(C) claim) but an attempt
    // fails if ANY of the C is unreachable — availability drops from
    // P[>=C of M reachable] toward P[all of C reachable] (mitigated by the
    // rotating retry across attempts).
    cfg.protocol.fanout = proto::QueryFanout::kExactQuorum;
  }
  if (variant == ProtoVariant::kFreeze) {
    cfg.protocol.freeze_enabled = true;
    cfg.protocol.Ti = Duration::seconds(20);
    cfg.protocol.heartbeat_period = Duration::seconds(5);
    cfg.protocol.check_quorum = 1;  // freeze replaces quorums (§3.3)
  }
  cfg.seed = seed;
  workload::Scenario s(cfg);

  workload::DriverConfig dcfg;
  dcfg.access_rate_per_host = 2.0;
  dcfg.manager_ops_per_second = 0.05;
  dcfg.revoke_fraction = 0.5;
  workload::Driver driver(s, dcfg, seed + 3);
  driver.start();
  s.run_for(Duration::minutes(2));  // warmup
  s.network().reset_stats();
  s.collector().reset();
  const Duration window = horizon(Duration::hours(2), Duration::minutes(20));
  s.run_for(window);

  const auto& rep = s.collector().report();
  return RunResult{
      rep.availability(), rep.security(), rep.security_violations,
      static_cast<double>(s.network().stats().sent) / window.to_seconds(),
      s.collector().all_latency().mean_seconds()};
}

RunResult run_baseline(baseline::Kind kind, double pi, std::uint64_t seed) {
  sim::Scheduler sched;
  Rng rng(seed);

  std::vector<HostId> mgr_ids, host_ids, all;
  for (std::uint32_t i = 0; i < kManagers; ++i) mgr_ids.push_back(HostId(i));
  for (std::uint32_t i = 0; i < kHosts; ++i) host_ids.push_back(HostId(1000 + i));
  all = mgr_ids;
  all.insert(all.end(), host_ids.begin(), host_ids.end());

  net::Network::Config ncfg;
  ncfg.latency = std::make_unique<net::ExponentialTailLatency>(
      Duration::millis(40), Duration::millis(20));
  ncfg.partitions = std::make_shared<net::PairwiseMarkovPartitions>(
      all, net::PairwiseMarkovPartitions::Config{pi, Duration::seconds(25)});
  net::Network net(sched, rng.split(), std::move(ncfg));
  runtime::SimEnv env(net);

  baseline::BaselineConfig bcfg;
  bcfg.kind = kind;
  bcfg.managers = kManagers;
  bcfg.app_hosts = kHosts;
  bcfg.query_timeout = Duration::seconds(1);
  bcfg.gossip_period = Duration::seconds(15);
  bcfg.seed = seed + 1;
  baseline::BaselineSystem sys(env, AppId(1), mgr_ids, host_ids, bcfg);
  net.start();

  metrics::GroundTruth truth;
  metrics::Collector collector(truth, kTe);
  metrics::Histogram latency;

  // Initial grants (recorded at local-effect time, the only notion these
  // designs have).
  std::vector<bool> granted(kUsers, false);
  for (int u = 0; u < kUsers; ++u) {
    if (rng.next_bool(0.5)) {
      granted[static_cast<std::size_t>(u)] = true;
      const UserId uid(static_cast<std::uint32_t>(u));
      sys.grant(uid, [&truth, uid](sim::TimePoint t) {
        truth.record(AppId(1), uid, acl::Right::kUse, true, t);
      });
    }
  }

  // Poisson accesses per host.
  std::vector<std::unique_ptr<sim::Timer>> access_timers;
  std::function<void(int)> schedule_access = [&](int h) {
    const auto wait = Duration::from_seconds(rng.next_exponential(0.5));
    access_timers[static_cast<std::size_t>(h)]->arm(wait, [&, h] {
      const UserId uid(static_cast<std::uint32_t>(rng.next_below(kUsers)));
      sys.check(h, uid, [&collector, &latency, uid](
                            const baseline::BaselineDecision& d) {
        proto::AccessDecision ad;
        ad.app = AppId(1);
        ad.user = uid;
        ad.requested = d.requested;
        ad.decided = d.decided;
        ad.allowed = d.allowed;
        ad.path = d.allowed ? proto::DecisionPath::kQuorumGranted
                            : proto::DecisionPath::kQuorumDenied;
        collector.observe(ad);
        latency.record(d.latency());
      });
      schedule_access(h);
    });
  };
  for (int h = 0; h < kHosts; ++h) {
    access_timers.push_back(std::make_unique<sim::Timer>(sched));
  }
  for (int h = 0; h < kHosts; ++h) schedule_access(h);

  // Manager op process (0.05 ops/s, half revokes), serialized per run.
  sim::Timer op_timer(sched);
  std::function<void()> schedule_op = [&] {
    const auto wait = Duration::from_seconds(rng.next_exponential(20.0));
    op_timer.arm(wait, [&] {
      const int u = static_cast<int>(rng.next_below(kUsers));
      const UserId uid(static_cast<std::uint32_t>(u));
      const bool cur = granted[static_cast<std::size_t>(u)];
      if (cur && rng.next_bool(0.5)) {
        granted[static_cast<std::size_t>(u)] = false;
        sys.revoke(uid, [&truth, uid](sim::TimePoint t) {
          truth.record(AppId(1), uid, acl::Right::kUse, false, t);
        });
      } else if (!cur) {
        granted[static_cast<std::size_t>(u)] = true;
        sys.grant(uid, [&truth, uid](sim::TimePoint t) {
          truth.record(AppId(1), uid, acl::Right::kUse, true, t);
        });
      }
      schedule_op();
    });
  };
  schedule_op();

  sched.run_until(sched.now() + Duration::minutes(2));  // warmup
  net.reset_stats();
  collector.reset();
  const Duration window = horizon(Duration::hours(2), Duration::minutes(20));
  sched.run_until(sched.now() + window);

  const auto& rep = collector.report();
  return RunResult{rep.availability(), rep.security(), rep.security_violations,
                   static_cast<double>(net.stats().sent) / window.to_seconds(),
                   latency.mean_seconds()};
}

void emit(double pi, bench::JsonEmitter& json) {
  Table t;
  t.set_header({"system", "availability", "security", "violations",
                "msgs/s", "mean check (s)"});
  auto row = [&t, &json, pi](const char* name, const RunResult& r) {
    json.record(std::string(name) + ",Pi=" + std::to_string(pi),
                {{"pi", pi},
                 {"availability", r.availability},
                 {"security", r.security},
                 {"violations", static_cast<double>(r.violations)},
                 {"msgs_per_s", r.msgs_per_second},
                 {"mean_check_s", r.mean_check_latency}});
    t.add_row({name, Table::fmt(r.availability, 4), Table::fmt(r.security, 4),
               Table::fmt(r.violations), Table::fmt(r.msgs_per_second, 2),
               Table::fmt(r.mean_check_latency, 4)});
  };
  row("quorum C=3 (deny)", run_protocol(ProtoVariant::kDeny, pi, 11));
  row("quorum C=3 (allow after R)", run_protocol(ProtoVariant::kAllow, pi, 12));
  row("quorum C=3 (exact fanout)", run_protocol(ProtoVariant::kExactFanout, pi, 17));
  row("freeze Ti=20s", run_protocol(ProtoVariant::kFreeze, pi, 13));
  row("full-replication", run_baseline(baseline::Kind::kFullReplication, pi, 14));
  row("local-only", run_baseline(baseline::Kind::kLocalOnly, pi, 15));
  row("eventual-consistency", run_baseline(baseline::Kind::kEventual, pi, 16));
  std::printf("\nPi = %.2f  (M=%d, H=%d, Te reference = 60s):\n", pi, kManagers,
              kHosts);
  t.print();
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  const wan::bench::BenchInfo info{
      "tradeoff",
      "STRATEGY ABLATION — quorum vs freeze vs baseline designs",
      "Hiltunen & Schlichting, ICDCS'97, §3.3 strategies + §3/§4.2 contrasts",
      "'violations' counts accesses allowed > Te after a\n"
      "revocation took local effect. Only the paper's protocol keeps this at\n"
      "zero while retaining availability; freeze keeps it at zero by giving\n"
      "up availability; the baselines either violate the bound (stale\n"
      "replicas, eventual gossip) or pay in availability/messages."};
  return wan::bench::bench_main(argc, argv, info,
                                [](wan::bench::JsonEmitter& json) {
    wan::emit(0.05, json);
    wan::emit(0.20, json);
  });
}
