// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one of the paper's artifacts (a table, a
// figure, or a prose claim from §4.1) and prints the paper's numbers beside
// the ones this implementation produces. Set WAN_BENCH_FAST=1 to shrink the
// simulated horizons (quicker, noisier — useful in CI).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>

#include "proto/decision.hpp"
#include "sim/time.hpp"
#include "workload/driver.hpp"
#include "workload/probes.hpp"
#include "workload/scenario.hpp"

namespace wan::bench {

inline bool fast_mode() {
  const char* v = std::getenv("WAN_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

/// Simulated horizon, shortened in fast mode.
inline sim::Duration horizon(sim::Duration normal, sim::Duration fast) {
  return fast_mode() ? fast : normal;
}

inline void print_header(const char* title, const char* source) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("  (reproduces: %s)\n", source);
  std::printf("================================================================\n");
}

/// Protocol-level empirical PA: the fraction of *fresh* checks (cache misses
/// that had to assemble a check quorum with R = 1) that succeeded. This is
/// the closest protocol observable to the paper's PA(C) definition.
struct FreshCheckAvailability {
  std::uint64_t quorum_ok = 0;
  std::uint64_t quorum_failed = 0;

  [[nodiscard]] double pa() const {
    const auto n = quorum_ok + quorum_failed;
    return n == 0 ? 0.0 : static_cast<double>(quorum_ok) / static_cast<double>(n);
  }
};

/// Wires a scenario's hosts to count fresh-check outcomes.
inline void attach_fresh_check_counter(workload::Scenario& s,
                                       FreshCheckAvailability& counter) {
  for (int h = 0; h < s.host_count(); ++h) {
    s.host(h).controller().set_decision_observer(
        [&counter](const proto::AccessDecision& d) {
          switch (d.path) {
            case proto::DecisionPath::kQuorumGranted:
            case proto::DecisionPath::kQuorumDenied:
              ++counter.quorum_ok;
              break;
            case proto::DecisionPath::kUnverifiableDeny:
            case proto::DecisionPath::kDefaultAllow:
              ++counter.quorum_failed;
              break;
            default:
              break;  // cache hits etc. are not fresh checks
          }
        });
  }
}

/// Protocol-level empirical PS: the fraction of updates whose quorum was
/// assembled within `deadline` of being issued ("revoke globally ... in a
/// timely fashion").
class TimelyUpdateMeter {
 public:
  TimelyUpdateMeter(workload::Scenario& s, sim::Duration deadline)
      : scenario_(s), deadline_(deadline) {}

  /// Issues one update (alternating grant/revoke) from the given manager and
  /// scores it against the deadline.
  void issue(int manager_idx, UserId user) {
    const sim::TimePoint issued = scenario_.scheduler().now();
    ++issued_count_;
    auto& mgr = scenario_.manager(manager_idx).manager();
    const acl::Op op = flip_ ? acl::Op::kRevoke : acl::Op::kAdd;
    flip_ = !flip_;
    mgr.submit_update(scenario_.app(), op, user, acl::Right::kUse,
                      [this, issued](const proto::UpdateOutcome& o) {
                        if (o.quorum_at - issued <= deadline_) ++timely_;
                      });
  }

  [[nodiscard]] double ps() const {
    return issued_count_ == 0
               ? 0.0
               : static_cast<double>(timely_) / static_cast<double>(issued_count_);
  }
  [[nodiscard]] std::uint64_t issued_count() const { return issued_count_; }

 private:
  workload::Scenario& scenario_;
  sim::Duration deadline_;
  std::uint64_t issued_count_ = 0;
  std::uint64_t timely_ = 0;
  bool flip_ = false;
};

}  // namespace wan::bench
