// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one of the paper's artifacts (a table, a
// figure, or a prose claim from §4.1) and prints the paper's numbers beside
// the ones this implementation produces. Set WAN_BENCH_FAST=1 to shrink the
// simulated horizons (quicker, noisier — useful in CI).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "proto/decision.hpp"
#include "sim/time.hpp"
#include "workload/driver.hpp"
#include "workload/probes.hpp"
#include "workload/scenario.hpp"

namespace wan::bench {

/// Machine-readable results sink, mirroring chaos_runner's --json emitter so
/// bench outputs land beside the sweep summaries (BENCH_*.json). Benches keep
/// their human-readable tables on stdout; each row they print is also
/// record()ed here, and write() dumps everything as one JSON document:
///
///   { "bench": "...", "rows": [ {"label": "...", "pi": 0.1, ...}, ... ] }
///
/// Constructed by the bench_main() harness (bench_main.hpp), which owns flag
/// parsing; an empty path makes record() a buffer and write() a no-op.
class JsonEmitter {
 public:
  JsonEmitter(std::string bench_name, std::string path)
      : name_(std::move(bench_name)), path_(std::move(path)) {}

  /// Queues one result row. Field order is preserved in the output.
  void record(std::string label,
              std::vector<std::pair<std::string, double>> fields) {
    rows_.push_back({std::move(label), std::move(fields)});
  }

  /// Writes the document to the --json path; returns false on I/O failure.
  /// Without --json this is a no-op that reports success.
  bool write() const {
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "    {\"label\": \"%s\"", r.label.c_str());
      for (const auto& [key, value] : r.fields) {
        std::fprintf(f, ", \"%s\": %.9g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::string name_;
  std::string path_;
  std::vector<Row> rows_;
};

inline bool fast_mode() {
  const char* v = std::getenv("WAN_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

/// Simulated horizon, shortened in fast mode.
inline sim::Duration horizon(sim::Duration normal, sim::Duration fast) {
  return fast_mode() ? fast : normal;
}

inline void print_header(const char* title, const char* source) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("  (reproduces: %s)\n", source);
  std::printf("================================================================\n");
}

/// Protocol-level empirical PA: the fraction of *fresh* checks (cache misses
/// that had to assemble a check quorum with R = 1) that succeeded. This is
/// the closest protocol observable to the paper's PA(C) definition.
struct FreshCheckAvailability {
  std::uint64_t quorum_ok = 0;
  std::uint64_t quorum_failed = 0;

  [[nodiscard]] double pa() const {
    const auto n = quorum_ok + quorum_failed;
    return n == 0 ? 0.0 : static_cast<double>(quorum_ok) / static_cast<double>(n);
  }
};

/// Wires a scenario's hosts to count fresh-check outcomes.
inline void attach_fresh_check_counter(workload::Scenario& s,
                                       FreshCheckAvailability& counter) {
  for (int h = 0; h < s.host_count(); ++h) {
    s.host(h).controller().set_decision_observer(
        [&counter](const proto::AccessDecision& d) {
          switch (d.path) {
            case proto::DecisionPath::kQuorumGranted:
            case proto::DecisionPath::kQuorumDenied:
              ++counter.quorum_ok;
              break;
            case proto::DecisionPath::kUnverifiableDeny:
            case proto::DecisionPath::kDefaultAllow:
              ++counter.quorum_failed;
              break;
            default:
              break;  // cache hits etc. are not fresh checks
          }
        });
  }
}

/// Protocol-level empirical PS: the fraction of updates whose quorum was
/// assembled within `deadline` of being issued ("revoke globally ... in a
/// timely fashion").
class TimelyUpdateMeter {
 public:
  TimelyUpdateMeter(workload::Scenario& s, sim::Duration deadline)
      : scenario_(s), deadline_(deadline) {}

  /// Issues one update (alternating grant/revoke) from the given manager and
  /// scores it against the deadline.
  void issue(int manager_idx, UserId user) {
    const sim::TimePoint issued = scenario_.scheduler().now();
    ++issued_count_;
    auto& mgr = scenario_.manager(manager_idx).manager();
    const acl::Op op = flip_ ? acl::Op::kRevoke : acl::Op::kAdd;
    flip_ = !flip_;
    mgr.submit_update(scenario_.app(), op, user, acl::Right::kUse,
                      [this, issued](const proto::UpdateOutcome& o) {
                        if (o.quorum_at - issued <= deadline_) ++timely_;
                      });
  }

  [[nodiscard]] double ps() const {
    return issued_count_ == 0
               ? 0.0
               : static_cast<double>(timely_) / static_cast<double>(issued_count_);
  }
  [[nodiscard]] std::uint64_t issued_count() const { return issued_count_; }

 private:
  workload::Scenario& scenario_;
  sim::Duration deadline_;
  std::uint64_t issued_count_ = 0;
  std::uint64_t timely_ = 0;
  bool flip_ = false;
};

}  // namespace wan::bench
