// Reproduces Table 1: "Effects of C on availability and security."
// M = 10 managers, C = 1..10, Pi in {0.1, 0.2}.
//
// Columns:
//   PA / PS (paper)   — the published values (hard-coded for comparison)
//   PA / PS (model)   — our closed-form implementation (must match)
//   PA / PS (sim)     — measured from the live partition model:
//       PA(sim): snapshot probe "can host reach >= C managers?"
//       PS(sim): snapshot probe "can an issuer reach >= M-C peers?"
//   PA (proto)        — fraction of protocol-level fresh checks (R = 1) that
//                       assembled a check quorum
//   PS (proto)        — fraction of real updates reaching their update quorum
//                       within a short deadline
#include <cstdio>

#include "analysis/availability.hpp"
#include "sim/timer.hpp"
#include "bench_common.hpp"
#include "bench_main.hpp"
#include "util/table.hpp"

namespace wan {
namespace {

using bench::horizon;
using sim::Duration;

struct PaperRow {
  double pa, ps;
};

// The published Table 1 values, for side-by-side comparison.
constexpr PaperRow kPaper01[10] = {
    {1.00000, 0.38742}, {1.00000, 0.77484}, {1.00000, 0.94703},
    {0.99999, 0.99167}, {0.99985, 0.99911}, {0.99837, 0.99994},
    {0.98720, 1.00000}, {0.92981, 1.00000}, {0.73610, 1.00000},
    {0.34868, 1.00000}};
constexpr PaperRow kPaper02[10] = {
    {1.00000, 0.13422}, {1.00000, 0.43621}, {0.99992, 0.73820},
    {0.99914, 0.91436}, {0.99363, 0.98042}, {0.96721, 0.99693},
    {0.87913, 0.99969}, {0.67780, 0.99998}, {0.37581, 1.00000},
    {0.10737, 1.00000}};

struct SimResult {
  double pa_probe, ps_probe, pa_proto, ps_proto;
};

SimResult simulate(int check_quorum, double pi, std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.managers = 10;
  cfg.app_hosts = 1;
  cfg.users = 10;
  cfg.partitions = workload::ScenarioConfig::Partitions::kPairwise;
  cfg.pi = pi;
  cfg.mean_down = Duration::seconds(30);
  cfg.protocol.check_quorum = check_quorum;
  cfg.protocol.max_attempts = 1;  // single-shot checks, as the analysis assumes
  cfg.protocol.query_timeout = Duration::seconds(2);
  cfg.protocol.Te = Duration::seconds(30);  // short: forces frequent re-checks
  cfg.seed = seed;
  workload::Scenario s(cfg);

  // Snapshot probes (the model's exact question).
  workload::QuorumProbe probe(s, check_quorum, Duration::seconds(10));
  probe.start();

  // Protocol-level fresh checks, sampled on a fixed schedule. (Driving these
  // from an access-rate workload would oversample failure periods: a failed
  // check caches nothing and is retried immediately, while a success hides
  // in the cache for te — evenly spaced probes of users whose entries have
  // certainly expired give one unbiased sample per interval.)
  for (int u = 0; u < s.user_count(); ++u) s.grant(s.user(u), 0);
  s.run_for(Duration::seconds(10));
  bench::FreshCheckAvailability fresh;
  bench::attach_fresh_check_counter(s, fresh);
  sim::PeriodicTimer probe_timer(s.scheduler());
  int probe_user = 1;  // user 0 is the update-meter target below
  probe_timer.start(Duration::seconds(35), [&] {  // > te: always a fresh check
    s.check(0, s.user(probe_user));
    probe_user = 1 + (probe_user % (s.user_count() - 1));
  });

  // Protocol-level timely updates: one op every 40s from a rotating issuer
  // against a dedicated user, scored against a 5s deadline (roughly "now",
  // relative to Te-scale dynamics).
  bench::TimelyUpdateMeter meter(s, Duration::seconds(5));
  sim::PeriodicTimer op_timer(s.scheduler());
  int issuer = 0;
  op_timer.start(Duration::seconds(40), [&] {
    meter.issue(issuer, s.user(0));
    issuer = (issuer + 1) % 10;
  });

  s.run_for(horizon(Duration::hours(6), Duration::hours(1)));
  return SimResult{probe.result().pa(), probe.result().ps(), fresh.pa(),
                   meter.ps()};
}

void run_pi(double pi, const PaperRow* paper, bench::JsonEmitter& json) {
  Table t;
  t.set_header({"C", "PA(paper)", "PA(model)", "PA(sim)", "PA(proto)",
                "PS(paper)", "PS(model)", "PS(sim)", "PS(proto)"});
  for (int c = 1; c <= 10; ++c) {
    const SimResult sim =
        simulate(c, pi, static_cast<std::uint64_t>(c) * 1000 +
                            static_cast<std::uint64_t>(pi * 10));
    json.record("Pi=" + std::to_string(pi) + ",C=" + std::to_string(c),
                {{"pi", pi},
                 {"c", c},
                 {"pa_paper", paper[c - 1].pa},
                 {"pa_model", analysis::availability_pa(10, c, pi)},
                 {"pa_sim", sim.pa_probe},
                 {"pa_proto", sim.pa_proto},
                 {"ps_paper", paper[c - 1].ps},
                 {"ps_model", analysis::security_ps(10, c, pi)},
                 {"ps_sim", sim.ps_probe},
                 {"ps_proto", sim.ps_proto}});
    t.add_row({Table::fmt(static_cast<std::int64_t>(c)),
               Table::fmt(paper[c - 1].pa), Table::fmt(analysis::availability_pa(10, c, pi)),
               Table::fmt(sim.pa_probe), Table::fmt(sim.pa_proto),
               Table::fmt(paper[c - 1].ps), Table::fmt(analysis::security_ps(10, c, pi)),
               Table::fmt(sim.ps_probe), Table::fmt(sim.ps_proto)});
  }
  std::printf("\nPi = %.1f, M = 10:\n", pi);
  t.print();
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  const wan::bench::BenchInfo info{
      "table1",
      "TABLE 1 — Effects of the check quorum C on availability and security",
      "Hiltunen & Schlichting, ICDCS'97, Table 1 (+ simulation columns)",
      "model must equal paper to 5 decimals; sim matches the\n"
      "model within sampling noise (the partition processes realize the same\n"
      "stationary pairwise-Pi the formulas assume); proto columns show the\n"
      "live protocol (timeouts, retransmissions) tracking the model.\n"
      "\n"
      "Note the one systematic PROTO deviation, at large C: the paper's PS\n"
      "formula counts only the write quorum (M-C+1), but a *sound* update\n"
      "must first version-read a check quorum of C (see DESIGN.md §6), so\n"
      "the live protocol's timely-update probability is the product of both\n"
      "phases and no longer saturates at C = M. The paper's curve is an\n"
      "upper bound that its own prose construction cannot quite reach."};
  return wan::bench::bench_main(argc, argv, info,
                                [](wan::bench::JsonEmitter& json) {
    wan::run_pi(0.1, wan::kPaper01, json);
    wan::run_pi(0.2, wan::kPaper02, json);
  });
}
