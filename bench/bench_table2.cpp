// Reproduces Table 2: "Effects of M and C on availability and security."
// Upper half: C fixed at 2 while M grows (availability rises, security
// collapses). Lower half: C grown with M (both improve) — the paper's
// "increase the cardinality of the manager set" recommendation.
#include <cstdio>

#include "analysis/availability.hpp"
#include "bench_common.hpp"
#include "bench_main.hpp"
#include "util/table.hpp"

namespace wan {
namespace {

using bench::horizon;
using sim::Duration;

struct Row {
  int m, c;
  double pa01, ps01, pa02, ps02;  // published values
};

constexpr Row kUpper[] = {
    {4, 2, 0.99630, 0.97200, 0.97280, 0.89600},
    {6, 2, 0.99994, 0.91854, 0.99840, 0.73728},
    {8, 2, 1.00000, 0.85031, 0.99992, 0.57672},
    {10, 2, 1.00000, 0.77484, 1.00000, 0.43621},
    {12, 2, 1.00000, 0.69736, 1.00000, 0.32212},
};
constexpr Row kLower[] = {
    {4, 2, 0.99630, 0.97200, 0.97280, 0.89600},
    {6, 3, 0.99873, 0.99144, 0.98304, 0.94208},
    {8, 4, 0.99957, 0.99727, 0.98959, 0.96666},
    {10, 5, 0.99985, 0.99911, 0.99363, 0.98042},
    {12, 6, 0.99995, 0.99970, 0.99610, 0.98835},
};

struct Probe {
  double pa, ps;
};

Probe probe_sim(int m, int c, double pi, std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.managers = m;
  cfg.app_hosts = 1;
  cfg.users = 1;
  cfg.partitions = workload::ScenarioConfig::Partitions::kPairwise;
  cfg.pi = pi;
  cfg.mean_down = Duration::seconds(30);
  cfg.protocol.check_quorum = c;
  cfg.seed = seed;
  workload::Scenario s(cfg);
  workload::QuorumProbe probe(s, c, Duration::seconds(10));
  probe.start();
  s.run_for(horizon(Duration::hours(40), Duration::hours(4)));
  return Probe{probe.result().pa(), probe.result().ps()};
}

void emit_half(const char* caption, const Row* rows, int n,
               bench::JsonEmitter& json) {
  Table t;
  t.set_header({"M", "C",
                "PA.1(paper)", "PA.1(model)", "PA.1(sim)",
                "PS.1(paper)", "PS.1(model)", "PS.1(sim)",
                "PA.2(paper)", "PA.2(model)", "PA.2(sim)",
                "PS.2(paper)", "PS.2(model)", "PS.2(sim)"});
  for (int i = 0; i < n; ++i) {
    const Row& r = rows[i];
    const Probe s1 = probe_sim(r.m, r.c, 0.1,
                               static_cast<std::uint64_t>(i) * 77 + 5);
    const Probe s2 = probe_sim(r.m, r.c, 0.2,
                               static_cast<std::uint64_t>(i) * 77 + 6);
    json.record("M=" + std::to_string(r.m) + ",C=" + std::to_string(r.c),
                {{"m", r.m},
                 {"c", r.c},
                 {"pa1_paper", r.pa01},
                 {"pa1_model", analysis::availability_pa(r.m, r.c, 0.1)},
                 {"pa1_sim", s1.pa},
                 {"ps1_paper", r.ps01},
                 {"ps1_model", analysis::security_ps(r.m, r.c, 0.1)},
                 {"ps1_sim", s1.ps},
                 {"pa2_paper", r.pa02},
                 {"pa2_model", analysis::availability_pa(r.m, r.c, 0.2)},
                 {"pa2_sim", s2.pa},
                 {"ps2_paper", r.ps02},
                 {"ps2_model", analysis::security_ps(r.m, r.c, 0.2)},
                 {"ps2_sim", s2.ps}});
    t.add_row({Table::fmt(static_cast<std::int64_t>(r.m)),
               Table::fmt(static_cast<std::int64_t>(r.c)),
               Table::fmt(r.pa01), Table::fmt(analysis::availability_pa(r.m, r.c, 0.1)),
               Table::fmt(s1.pa),
               Table::fmt(r.ps01), Table::fmt(analysis::security_ps(r.m, r.c, 0.1)),
               Table::fmt(s1.ps),
               Table::fmt(r.pa02), Table::fmt(analysis::availability_pa(r.m, r.c, 0.2)),
               Table::fmt(s2.pa),
               Table::fmt(r.ps02), Table::fmt(analysis::security_ps(r.m, r.c, 0.2)),
               Table::fmt(s2.ps)});
  }
  std::printf("\n%s\n", caption);
  t.print();
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  const wan::bench::BenchInfo info{
      "table2",
      "TABLE 2 — Effects of M and C on availability and security",
      "Hiltunen & Schlichting, ICDCS'97, Table 2 (+ simulation columns)",
      "\".1\" columns are Pi=0.1, \".2\" are Pi=0.2. The\n"
      "upper half shows why adding managers without raising C is \"generally\n"
      "not a good idea\"; the lower half shows C ~ M/2 scaling fixing it."};
  return wan::bench::bench_main(argc, argv, info,
                                [](wan::bench::JsonEmitter& json) {
    wan::emit_half("Upper half — C fixed at 2 while M grows (security decays):",
                   wan::kUpper, 5, json);
    wan::emit_half("Lower half — C grown with M (both properties improve):",
                   wan::kLower, 5, json);
  });
}
