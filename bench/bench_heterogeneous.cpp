// Reproduces the closing analysis of §4.1: heterogeneous inaccessibility,
// correlated (shared-link) failures, frequency-weighted system estimates, and
// the manager-placement effect.
#include <cstdio>
#include <vector>

#include "analysis/availability.hpp"
#include "analysis/binomial.hpp"
#include "analysis/heterogeneous.hpp"
#include "bench_common.hpp"
#include "bench_main.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace wan {
namespace {

// Monte-Carlo cross-check of the shared-link closed form.
double monte_carlo_shared_link(const analysis::SharedLinkModel& model,
                               int at_least, int samples, std::uint64_t seed) {
  Rng rng(seed);
  int hits = 0;
  for (int s = 0; s < samples; ++s) {
    std::vector<bool> link_down(model.link_fail.size());
    for (std::size_t l = 0; l < link_down.size(); ++l) {
      link_down[l] = rng.next_bool(model.link_fail[l]);
    }
    int accessible = 0;
    for (std::size_t j = 0; j < model.link_of.size(); ++j) {
      const int l = model.link_of[j];
      if (l >= 0 && link_down[static_cast<std::size_t>(l)]) continue;
      if (!rng.next_bool(model.residual[j])) ++accessible;
    }
    if (accessible >= at_least) ++hits;
  }
  return static_cast<double>(hits) / samples;
}

void heterogeneous_table(bench::JsonEmitter& json) {
  Table t(
      "\nOne flaky manager (p=0.6) among M=10 otherwise-good (p=0.05) ones —\n"
      "exact Poisson-binomial PA/PS vs the homogeneous approximations:");
  t.set_header({"C", "PA(hetero)", "PA(hom. mean p)", "PS(hetero)",
                "PS(hom. mean p)"});
  std::vector<double> inaccess(10, 0.05);
  inaccess[0] = 0.6;
  const double mean_p = (0.6 + 9 * 0.05) / 10.0;
  // A good manager issues updates; the flaky one is among its 9 peers.
  std::vector<double> peers(9, 0.05);
  peers[0] = 0.6;
  for (int c = 1; c <= 10; ++c) {
    json.record("hetero,C=" + std::to_string(c),
                {{"c", c},
                 {"pa_hetero", analysis::availability_pa_hetero(inaccess, c)},
                 {"pa_hom", analysis::availability_pa(10, c, mean_p)},
                 {"ps_hetero", analysis::security_ps_hetero(peers, c)},
                 {"ps_hom", analysis::security_ps(10, c, mean_p)}});
    t.add_row({Table::fmt(static_cast<std::int64_t>(c)),
               Table::fmt(analysis::availability_pa_hetero(inaccess, c)),
               Table::fmt(analysis::availability_pa(10, c, mean_p)),
               Table::fmt(analysis::security_ps_hetero(peers, c)),
               Table::fmt(analysis::security_ps(10, c, mean_p))});
  }
  t.print();
}

void shared_link_table(bench::JsonEmitter& json) {
  Table t(
      "\nCorrelated failures — M=6 managers behind 2 shared links (q=0.1)\n"
      "vs 6 independent managers with the SAME marginal inaccessibility:");
  t.set_header({"quorum k", "P[>=k] shared-link", "P[>=k] Monte-Carlo",
                "P[>=k] independent"});
  analysis::SharedLinkModel model;
  model.link_of = {0, 0, 0, 1, 1, 1};
  model.link_fail = {0.1, 0.1};
  model.residual = std::vector<double>(6, 0.05);
  const double marginal = 1.0 - 0.9 * 0.95;  // P[manager inaccessible]
  for (int k = 1; k <= 6; ++k) {
    const double shared = model.at_least_accessible(k);
    const double mc = monte_carlo_shared_link(
        model, k, bench::fast_mode() ? 40000 : 400000,
        static_cast<std::uint64_t>(k));
    const double indep = analysis::binomial_at_least(6, k, 1.0 - marginal);
    json.record("shared-link,k=" + std::to_string(k),
                {{"k", k},
                 {"p_shared", shared},
                 {"p_monte_carlo", mc},
                 {"p_independent", indep}});
    t.add_row({Table::fmt(static_cast<std::int64_t>(k)), Table::fmt(shared),
               Table::fmt(mc), Table::fmt(indep)});
  }
  t.print();
}

void placement_table(bench::JsonEmitter& json) {
  Table t(
      "\nManager placement (paper: \"the assignment of managers to sites\n"
      "should be such that the inaccessibility between these sites is\n"
      "minimized\") — frequency-weighted system security, C=3, M=5:");
  t.set_header({"scenario", "uniform-weighted PS", "update-weighted PS"});

  // Manager 0 is poorly connected to its peers.
  std::vector<double> ps;
  for (int j = 0; j < 5; ++j) {
    std::vector<double> peers(4, 0.05);
    if (j == 0) peers.assign(4, 0.5);
    ps.push_back(analysis::security_ps_hetero(peers, 3));
  }
  const analysis::WeightedEstimate uniform{ps, {1, 1, 1, 1, 1}};
  const analysis::WeightedEstimate hot_is_bad{ps, {10, 1, 1, 1, 1}};
  const analysis::WeightedEstimate hot_is_good{ps, {1, 10, 1, 1, 1}};
  json.record("placement",
              {{"uniform_ps", uniform.weighted_mean()},
               {"hot_is_good_ps", hot_is_good.weighted_mean()},
               {"hot_is_bad_ps", hot_is_bad.weighted_mean()}});
  t.add_row({"flaky mgr rarely updates", Table::fmt(uniform.weighted_mean()),
             Table::fmt(hot_is_good.weighted_mean())});
  t.add_row({"flaky mgr updates often", Table::fmt(uniform.weighted_mean()),
             Table::fmt(hot_is_bad.weighted_mean())});
  t.print();
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  const wan::bench::BenchInfo info{
      "heterogeneous",
      "HETEROGENEOUS & CORRELATED INACCESSIBILITY",
      "Hiltunen & Schlichting, ICDCS'97, §4.1 closing paragraphs",
      "the homogeneous mean-p approximation misjudges both\n"
      "tails when one manager is flaky; shared links strictly hurt high\n"
      "quorums versus independent failures with identical marginals; and a\n"
      "frequently-updating manager on a bad link drags system security far\n"
      "below the uniform estimate — hence the placement advice."};
  return wan::bench::bench_main(argc, argv, info,
                                [](wan::bench::JsonEmitter& json) {
    wan::heterogeneous_table(json);
    wan::shared_link_table(json);
    wan::placement_table(json);
  });
}
