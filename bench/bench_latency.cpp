// Reproduces the §4.1 delay claims:
//   * cache hit:   "very small" (zero network round trips)
//   * cache miss:  O(C) — the C-th fastest manager round trip
//   * unreachable: O(R) — R attempts x query timeout
// Measured on the exponential-tail WAN latency model and compared to the
// closed-form order-statistic expectation.
#include <cstdio>
#include <optional>

#include "analysis/overhead_model.hpp"
#include "bench_common.hpp"
#include "bench_main.hpp"
#include "metrics/histogram.hpp"
#include "util/table.hpp"

namespace wan {
namespace {

using bench::fast_mode;
using proto::AccessDecision;
using sim::Duration;

constexpr double kBaseS = 0.040;   // latency model: 40ms propagation
constexpr double kTailS = 0.020;   // + Exp(20ms) queueing tail

workload::ScenarioConfig wan_config(int managers, int check_quorum,
                                    std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.managers = managers;
  cfg.app_hosts = 1;
  cfg.users = 2000;  // fresh user per trial -> every check is a miss
  cfg.partitions = workload::ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = false;
  cfg.latency_base = Duration::from_seconds(kBaseS);
  cfg.latency_tail = Duration::from_seconds(kTailS);
  cfg.protocol.check_quorum = check_quorum;
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::seconds(2);
  cfg.seed = seed;
  return cfg;
}

/// Mean miss latency over `trials` fresh checks.
double measure_miss(int managers, int check_quorum) {
  workload::Scenario s(wan_config(managers, check_quorum,
                                  static_cast<std::uint64_t>(check_quorum)));
  const int trials = fast_mode() ? 300 : 2000;
  for (int i = 0; i < trials; ++i) s.grant(s.user(i), 0);
  s.run_for(Duration::seconds(30));

  metrics::Histogram hist;
  for (int i = 0; i < trials; ++i) {
    std::optional<AccessDecision> d;
    s.check(0, s.user(i), [&](const AccessDecision& dec) { d = dec; });
    s.run_for(Duration::seconds(10));
    if (d && d->path == proto::DecisionPath::kQuorumGranted) {
      hist.record(d->latency());
    }
  }
  return hist.mean_seconds();
}

double measure_cache_hit(int managers) {
  workload::Scenario s(wan_config(managers, 2, 99));
  s.grant(s.user(0), 0);
  s.run_for(Duration::seconds(5));
  std::optional<AccessDecision> warm;
  s.check(0, s.user(0), [&](const AccessDecision& d) { warm = d; });
  s.run_for(Duration::seconds(5));
  std::optional<AccessDecision> hit;
  s.check(0, s.user(0), [&](const AccessDecision& d) { hit = d; });
  s.run_for(Duration::seconds(5));
  return hit ? hit->latency().to_seconds() : -1.0;
}

double measure_unreachable(int attempts_r) {
  auto cfg = wan_config(3, 2, static_cast<std::uint64_t>(attempts_r) + 50);
  cfg.protocol.max_attempts = attempts_r;
  workload::Scenario s(cfg);
  s.grant(s.user(0), 0);
  s.run_for(Duration::seconds(5));
  for (const HostId m : s.manager_ids()) {
    s.scripted().cut_link(s.host_ids()[0], m);
  }
  std::optional<AccessDecision> d;
  s.check(0, s.user(0), [&](const AccessDecision& dec) { d = dec; });
  s.run_for(Duration::seconds(60));
  return d ? d->latency().to_seconds() : -1.0;
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  const wan::bench::BenchInfo info{
      "latency",
      "CHECK LATENCY — cache hit vs O(C) miss vs O(R) unreachable",
      "Hiltunen & Schlichting, ICDCS'97, §4.1 (delay discussion)",
      "\"the delay ... is very small if the valid entry is\n"
      "in the cache. If not, the delay is O(C) in the normal case ... but\n"
      "O(R) if the required number are not accessible. Reducing R reduces\n"
      "this worst case delay, but at the cost of reduced security.\""};
  return wan::bench::bench_main(argc, argv, info,
                                [](wan::bench::JsonEmitter& json) {
  using wan::Table;
  const double hit_s = wan::measure_cache_hit(5);
  std::printf("\nCache hit (local lookup, no network): %.6f s\n", hit_s);
  json.record("cache-hit", {{"seconds", hit_s}});

  {
    Table t("\nCache miss, M = 5 managers reachable — mean delay vs C:");
    t.set_header({"C", "measured mean (s)", "order-statistic model (s)"});
    for (const int c : {1, 2, 3, 4, 5}) {
      const double measured = wan::measure_miss(5, c);
      const double model = wan::analysis::expected_check_delay_seconds(
          5, c, wan::kBaseS, wan::kTailS);
      json.record("miss,C=" + std::to_string(c),
                  {{"c", c}, {"measured_s", measured}, {"model_s", model}});
      t.add_row({std::to_string(c), Table::fmt(measured, 4),
                 Table::fmt(model, 4)});
    }
    t.print();
  }
  {
    Table t("\nAll managers unreachable — delay until deny, vs R:");
    t.set_header({"R", "measured (s)", "model R x timeout (s)"});
    for (const int r : {1, 2, 3, 5}) {
      const double measured = wan::measure_unreachable(r);
      const double model = wan::analysis::unreachable_delay_seconds(
          r, wan::sim::Duration::seconds(2));
      json.record("unreachable,R=" + std::to_string(r),
                  {{"r", r}, {"measured_s", measured}, {"model_s", model}});
      t.add_row({std::to_string(r), Table::fmt(measured, 3),
                 Table::fmt(model, 3)});
    }
    t.print();
  }
  });
}
