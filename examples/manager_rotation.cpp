// Rotating a manager out of (and a replacement into) Managers(A) at runtime —
// the §3.2 name-service extension in action. Operators do this when a manager
// site is being decommissioned or keeps landing on the wrong side of
// partitions (the §4.1 placement advice).
//
// Timeline:
//   1. {m0, m1, m2} manage the app; alice is granted; checks flow.
//   2. m3 is commissioned: the name service publishes {m0.. m3}? No —
//      we *replace* m0: publish {m1, m2, m3}; every member reconfigures;
//      m3 syncs state from a check quorum of peers before serving.
//   3. m0 is retired (and, to prove the point, powered off).
//   4. Hosts keep working: within the resolver TTL they may still try the
//      old set; after it lapses they route to the new one. Rights survive
//      the rotation because state was synced, not re-entered.
//
//   $ build/examples/manager_rotation
#include <cstdio>
#include <optional>

#include "auth/credentials.hpp"
#include "nameservice/name_service.hpp"
#include "net/network.hpp"
#include "proto/host.hpp"
#include "runtime/sim_env.hpp"
#include "sim/scheduler.hpp"

using namespace wan;
using sim::Duration;

namespace {
void check(sim::Scheduler& sched, proto::AppHost& host, AppId app, UserId user,
           const char* label) {
  std::optional<proto::AccessDecision> d;
  host.controller().check_access(
      app, user, [&](const proto::AccessDecision& dec) { d = dec; });
  sched.run_until(sched.now() + Duration::seconds(10));
  std::printf("  [t=%7.2fs] %-42s -> %s (%s)\n", sched.now().to_seconds(),
              label, d && d->allowed ? "ALLOWED" : "DENIED",
              d ? proto::to_cstring(d->path) : "no decision");
}
}  // namespace

int main() {
  sim::Scheduler sched;
  net::Network::Config ncfg;
  ncfg.latency = std::make_unique<net::ConstantLatency>(Duration::millis(15));
  net::Network net(sched, Rng(4), std::move(ncfg));
  runtime::SimEnv env(net);
  ns::NameService names;
  auth::KeyRegistry keys;

  proto::ProtocolConfig config;
  config.check_quorum = 2;
  config.Te = Duration::minutes(2);
  config.name_service_ttl = Duration::seconds(45);

  const AppId app(1);
  const UserId alice(7);

  std::vector<std::unique_ptr<proto::ManagerHost>> managers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    managers.push_back(std::make_unique<proto::ManagerHost>(
        HostId(i), env, clk::LocalClock::perfect(), config));
  }
  const std::vector<HostId> old_set{HostId(0), HostId(1), HostId(2)};
  const std::vector<HostId> new_set{HostId(1), HostId(2), HostId(3)};
  names.set_managers(app, old_set);
  for (const HostId id : old_set) {
    managers[id.value()]->manager().manage_app(app, old_set);
  }

  proto::AppHost host(HostId(50), env, clk::LocalClock::perfect(),
                      names, keys, config);
  host.controller().register_app(
      app, [](UserId, const std::string&) { return std::string("ok"); });
  net.start();

  std::printf("Manager rotation drill (TTL = 45s, C = 2)\n");
  std::printf("==========================================\n");
  managers[0]->manager().submit_update(app, acl::Op::kAdd, alice,
                                       acl::Right::kUse);
  sched.run_until(sched.now() + Duration::seconds(5));
  check(sched, host, app, alice, "alice under the old set {m0,m1,m2}");

  std::printf("  [t=%7.2fs] publishing new set {m1,m2,m3}; m3 syncing...\n",
              sched.now().to_seconds());
  names.set_managers(app, new_set);
  for (const HostId id : new_set) {
    managers[id.value()]->manager().reconfigure_app(app, new_set);
  }
  sched.run_until(sched.now() + Duration::seconds(5));
  std::printf("  [t=%7.2fs] m3 synced: %s; retiring m0 (crash, forget)\n",
              sched.now().to_seconds(),
              managers[3]->manager().synced(app) ? "yes" : "no");
  managers[0]->manager().forget_app(app);
  managers[0]->crash();

  check(sched, host, app, alice, "alice during the TTL window");
  sched.run_until(sched.now() + Duration::seconds(60));  // TTL lapses
  check(sched, host, app, alice, "alice after re-resolution (m0 is gone)");

  // Revocations work against the new membership too.
  managers[3]->manager().submit_update(app, acl::Op::kRevoke, alice,
                                       acl::Right::kUse);
  sched.run_until(sched.now() + Duration::seconds(5));
  check(sched, host, app, alice, "alice after revoke issued at newcomer m3");

  std::printf(
      "\nState followed the membership: the newcomer synced the ACL from a\n"
      "check quorum of peers (same machinery as §3.4 crash recovery), hosts\n"
      "re-resolved via the name service TTL, and the retired manager's\n"
      "departure never interrupted service.\n");
  return 0;
}
