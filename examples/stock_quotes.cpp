// The paper's motivating example (§2.1): "a service that provides stock
// quotes, but only to those users who have paid for the service" — an
// availability-first application. Customer satisfaction is paramount and an
// occasional unauthorized read costs only minor revenue, so the operator
// enables the Figure 4 rule: after R failed verification attempts, allow.
//
// The run compares the same partition-storm regime under the security-first
// (deny) and availability-first (allow) policies and prints what each choice
// buys and costs.
//
//   $ build/examples/stock_quotes
#include <cstdio>

#include "workload/driver.hpp"
#include "workload/scenario.hpp"

using namespace wan;
using sim::Duration;

namespace {

struct Outcome {
  double availability;
  std::uint64_t denied_customers;
  std::uint64_t freeloader_reads;
  double mean_latency_ms;
};

Outcome run(proto::ExhaustedPolicy policy) {
  workload::ScenarioConfig cfg;
  cfg.managers = 5;
  cfg.app_hosts = 4;   // quote servers
  cfg.users = 20;      // subscribers + would-be freeloaders
  cfg.partitions = workload::ScenarioConfig::Partitions::kStorms;
  cfg.storm.mean_between_storms = Duration::minutes(4);
  cfg.storm.mean_storm_duration = Duration::minutes(1);
  cfg.protocol.check_quorum = 3;
  cfg.protocol.Te = Duration::minutes(5);  // quotes tolerate slow revocation
  cfg.protocol.max_attempts = 2;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.protocol.exhausted_policy = policy;
  cfg.seed = 7;
  workload::Scenario market(cfg);

  workload::DriverConfig load;
  load.access_rate_per_host = 3.0;     // quote lookups
  load.manager_ops_per_second = 0.02;  // occasional subscribe/unsubscribe
  load.revoke_fraction = 0.4;
  load.initially_granted = 0.6;        // 60% are paying subscribers
  load.zipf_s = 0.8;                   // a few very chatty customers
  workload::Driver driver(market, load, 99);
  driver.start();
  market.run_for(Duration::hours(2));
  driver.stop();
  market.run_for(Duration::minutes(1));

  const auto& rep = market.collector().report();
  return Outcome{rep.availability(), rep.legit_denied,
                 rep.security_violations + rep.unauth_allowed_grace,
                 market.collector().all_latency().mean_seconds() * 1e3};
}

}  // namespace

int main() {
  std::printf("Stock-quote service under WAN partition storms (2 simulated hours)\n");
  std::printf("==================================================================\n");

  const Outcome secure = run(proto::ExhaustedPolicy::kDeny);
  const Outcome avail = run(proto::ExhaustedPolicy::kAllow);

  std::printf("\n%-34s %18s %18s\n", "", "security-first", "availability-first");
  std::printf("%-34s %18s %18s\n", "policy after R failed attempts", "DENY",
              "ALLOW (Fig. 4)");
  std::printf("%-34s %18.4f %18.4f\n", "subscriber availability",
              secure.availability, avail.availability);
  std::printf("%-34s %18llu %18llu\n", "paying customers turned away",
              static_cast<unsigned long long>(secure.denied_customers),
              static_cast<unsigned long long>(avail.denied_customers));
  std::printf("%-34s %18llu %18llu\n", "non-subscriber reads served",
              static_cast<unsigned long long>(secure.freeloader_reads),
              static_cast<unsigned long long>(avail.freeloader_reads));
  std::printf("%-34s %18.2f %18.2f\n", "mean decision latency (ms)",
              secure.mean_latency_ms, avail.mean_latency_ms);

  std::printf(
      "\nThe paper's point, in numbers: for an on-line quote service the\n"
      "right-hand column is the right choice — happier subscribers, a few\n"
      "leaked quotes. For the corporate directory next door it would be\n"
      "malpractice (see examples/corporate_directory).\n");
  return 0;
}
