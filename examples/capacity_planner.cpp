// Capacity planning with the §4.1 model: "how many managers do I need, and
// what check quorum, to hit my availability/security targets on MY network?"
// — then validates the recommendation against a live simulation.
//
//   $ build/examples/capacity_planner            # defaults
//   $ build/examples/capacity_planner 0.99 0.999 0.15
//                                     ^PA   ^PS   ^Pi
#include <cstdio>
#include <cstdlib>

#include "analysis/advisor.hpp"
#include "analysis/availability.hpp"
#include "workload/probes.hpp"
#include "workload/scenario.hpp"

using namespace wan;
using sim::Duration;

int main(int argc, char** argv) {
  analysis::Requirements req;
  req.min_availability = argc > 1 ? std::atof(argv[1]) : 0.995;
  req.min_security = argc > 2 ? std::atof(argv[2]) : 0.995;
  req.pi = argc > 3 ? std::atof(argv[3]) : 0.10;

  std::printf("Requirements: PA >= %.4f, PS >= %.4f, pairwise Pi = %.2f\n\n",
              req.min_availability, req.min_security, req.pi);

  const auto rec = analysis::smallest_feasible(req);
  if (!rec) {
    std::printf("No (M <= 64, C) configuration meets these targets at this Pi.\n"
                "Either relax a target or improve the network (lower Pi).\n");
    return 1;
  }
  std::printf("Cheapest feasible configuration:\n");
  std::printf("  managers M      = %d\n", rec->managers);
  std::printf("  check quorum C  = %d   (update quorum %d)\n", rec->check_quorum,
              rec->managers - rec->check_quorum + 1);
  std::printf("  predicted PA    = %.5f\n", rec->pa);
  std::printf("  predicted PS    = %.5f\n\n", rec->ps);

  // Alternative emphases at the same M.
  for (const double w : {0.0, 0.5, 1.0}) {
    const auto alt = analysis::choose_check_quorum(rec->managers, req.pi, w);
    std::printf("  (emphasis %.1f: C = %-2d -> PA %.5f, PS %.5f)\n", w,
                alt.check_quorum, alt.pa, alt.ps);
  }

  std::printf("\nValidating against a live simulation (20 simulated hours)...\n");
  workload::ScenarioConfig cfg;
  cfg.managers = rec->managers;
  cfg.app_hosts = 1;
  cfg.users = 1;
  cfg.partitions = workload::ScenarioConfig::Partitions::kPairwise;
  cfg.pi = req.pi;
  cfg.protocol.check_quorum = rec->check_quorum;
  cfg.seed = 31337;
  workload::Scenario s(cfg);
  workload::QuorumProbe probe(s, rec->check_quorum, Duration::seconds(10));
  probe.start();
  s.run_for(Duration::hours(20));
  std::printf("  measured PA = %.5f   measured PS = %.5f   (%llu samples)\n",
              probe.result().pa(), probe.result().ps(),
              static_cast<unsigned long long>(probe.result().samples));
  const bool ok = probe.result().pa() >= req.min_availability - 0.01 &&
                  probe.result().ps() >= req.min_security - 0.01;
  std::printf("  verdict: %s\n", ok ? "recommendation holds under simulation"
                                    : "simulation disagrees (sampling noise? "
                                      "re-run with a different seed)");
  return ok ? 0 : 2;
}
