// The paper's second motivating example (§2.1): "a distributed information
// service that maintains data for an organization ... some user identifiers
// could have been compromised or users terminated, so it is important to be
// able to prevent those users from accessing or changing information."
//
// Timeline dramatized here:
//   t0   Mallory's credentials are active; she reads the directory.
//   t1   Mallory's laptop host drops off the corporate WAN (partition) —
//        with a freshly cached right in the edge host's ACL cache.
//   t2   Security revokes Mallory. The revoke reaches its update quorum:
//        from this instant the Te clock runs.
//   ...  The edge host, still partitioned, keeps serving her from cache
//        (inside the permitted grace window).
//   t2+Te  The cached entry has expired on the host's drifting local clock.
//          Mallory is locked out EVERYWHERE, partition or not.
//
//   $ build/examples/corporate_directory
#include <cstdio>

#include "workload/scenario.hpp"

using namespace wan;
using sim::Duration;

namespace {
double now_s(workload::Scenario& s) { return s.scheduler().now().to_seconds(); }

void try_access(workload::Scenario& s, const char* who_when) {
  s.check(0, s.user(0), [&, who_when](const proto::AccessDecision& d) {
    std::printf("  [t=%7.2fs] %-38s -> %s (%s)\n", now_s(s), who_when,
                d.allowed ? "ALLOWED" : "DENIED", proto::to_cstring(d.path));
  });
  s.run_for(Duration::seconds(3));
}
}  // namespace

int main() {
  // Security-first configuration: deny when unverifiable, tight Te.
  workload::ScenarioConfig cfg;
  cfg.managers = 5;
  cfg.app_hosts = 2;
  cfg.users = 1;  // Mallory
  cfg.partitions = workload::ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(25);
  cfg.drifting_clocks = true;  // edge hosts keep imperfect time
  cfg.protocol.clock_bound_b = 1.05;
  cfg.protocol.check_quorum = 3;
  cfg.protocol.Te = Duration::minutes(1);  // 60s compromise window, maximum
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.protocol.exhausted_policy = proto::ExhaustedPolicy::kDeny;
  cfg.seed = 13;
  workload::Scenario corp(cfg);

  std::printf("Corporate directory — compromised-credential lockout drill\n");
  std::printf("===========================================================\n");
  std::printf("Te = 60s, b = 1.05 (cache entries live te = Te/b ~ 57s of local clock)\n\n");

  corp.grant(corp.user(0), 0);
  corp.run_for(Duration::seconds(5));
  try_access(corp, "Mallory, credentials still valid");

  std::printf("  [t=%7.2fs] edge host drops off the WAN (partition begins)\n",
              now_s(corp));
  for (const HostId m : corp.manager_ids()) {
    corp.scripted().cut_link(corp.host_ids()[0], m);
  }

  double revoked_at = 0.0;
  corp.revoke(corp.user(0), 2, [&] {
    revoked_at = now_s(corp);
    std::printf("  [t=%7.2fs] SECURITY REVOKES MALLORY — update quorum reached;\n"
                "              guarantee: no access anywhere after t=%.2fs\n",
                revoked_at, revoked_at + 60.0);
  });
  corp.run_for(Duration::seconds(3));

  try_access(corp, "Mallory via partitioned edge host");
  corp.run_for(Duration::seconds(20));
  try_access(corp, "Mallory, ~25s into the grace window");
  corp.run_for(Duration::seconds(25));
  try_access(corp, "Mallory, ~55s after the revoke");
  corp.run_for(Duration::seconds(15));
  try_access(corp, "Mallory, past the Te deadline");

  std::printf("\n  healing the partition changes nothing for her:\n");
  corp.scripted().heal_all();
  corp.run_for(Duration::seconds(3));
  try_access(corp, "Mallory, partition healed");

  std::printf(
      "\nNote the middle accesses: the paper's design KNOWINGLY allows them —\n"
      "they are inside the Te grace the application itself chose. Want a\n"
      "smaller window? Shrink Te and pay the O(C/Te) re-validation traffic\n"
      "(bench/bench_overhead quantifies exactly how much).\n");
  return 0;
}
