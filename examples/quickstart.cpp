// Quickstart: the protocol in five minutes.
//
// Builds the smallest interesting deployment (3 managers, 2 application
// hosts, 1 user), then walks the paper's §2.3 operations end to end:
// Add -> Invoke (miss, then cache hit) -> Revoke -> Invoke (denied).
//
//   $ build/examples/quickstart
#include <cstdio>

#include "workload/scenario.hpp"

using namespace wan;
using sim::Duration;

namespace {

void banner(const char* text) { std::printf("\n--- %s ---\n", text); }

void show(const proto::AccessDecision& d) {
  std::printf("  host decided: %s (path: %s, latency: %.0f ms)\n",
              d.allowed ? "ALLOW" : "DENY", proto::to_cstring(d.path),
              d.latency().to_seconds() * 1e3);
}

}  // namespace

int main() {
  // One application, 3 managers holding its ACL, 2 hosts running it, and a
  // paying customer. Checks need C = 2 of the 3 managers; a revocation is
  // guaranteed to bite everywhere within Te = 2 minutes.
  workload::ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 1;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(30);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::minutes(2);
  cfg.seed = 2024;
  workload::Scenario world(cfg);
  const UserId alice = world.user(0);

  banner("1. Alice invokes before being granted: rejected by quorum");
  world.check(0, alice, [](const proto::AccessDecision& d) { show(d); });
  world.run_for(Duration::seconds(5));

  banner("2. A manager runs Add(app, alice, use); quorum = guarantee point");
  world.grant(alice, 0, [&] {
    std::printf("  update quorum reached at t=%.3fs — from here, at most Te\n"
                "  passes before the operation is globally effective\n",
                world.scheduler().now().to_seconds());
  });
  world.run_for(Duration::seconds(5));

  banner("3. Alice invokes through her user agent (signed message)");
  world.agent(0).invoke(world.app(), {world.host_ids()[0]}, "quote?msft",
                        [](const proto::InvokeResult& r) {
                          std::printf("  reply: ok=%d result=\"%s\" after %.0f ms\n",
                                      r.ok, r.result.c_str(),
                                      r.latency.to_seconds() * 1e3);
                        });
  world.run_for(Duration::seconds(5));

  banner("4. Second invocation hits the host's ACL cache (no manager traffic)");
  world.check(0, alice, [](const proto::AccessDecision& d) { show(d); });
  world.run_for(Duration::seconds(5));

  banner("5. Revoke(app, alice, use): managers push RevokeNotify to hosts");
  world.revoke(alice, 1);
  world.run_for(Duration::seconds(5));
  std::printf("  host 0 cache size now: %zu (entry flushed)\n",
              world.host(0).controller().cache(world.app())->size());

  banner("6. Alice tries again: denied");
  world.check(0, alice, [](const proto::AccessDecision& d) { show(d); });
  world.run_for(Duration::seconds(5));

  std::printf(
      "\nDone. Everything above ran in simulated time on one thread —\n"
      "try examples/stock_quotes and examples/corporate_directory for the\n"
      "availability/security trade-off under real partitions.\n");
  return 0;
}
