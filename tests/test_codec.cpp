// Wire codec tests: the registry covers every protocol message, randomized
// round-trips are lossless and canonical (re-encoding a decoded frame yields
// the original bytes), and every class of hostile input — truncation, bad
// magic/version/flags, unknown tags, trailing bytes, non-canonical payloads,
// adversarial length fields, plain garbage — is rejected without crashing or
// allocating unboundedly. The frame layout and tag table under test are
// documented in docs/WIRE_FORMAT.md; tags are frozen there.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/codec.hpp"
#include "net/reliable.hpp"
#include "proto/messages.hpp"
#include "proto/wire.hpp"
#include "shard/shard_map.hpp"
#include "util/rng.hpp"

namespace wan {
namespace {

using net::CodecRegistry;
using net::DecodeError;

/// The full tag table under test: the 15 original protocol messages, the
/// reliability envelope (tags 16/17, net/reliable.hpp), the shard
/// rebalancing messages (tags 18-21), and the dissemination/delta-sync
/// messages (tags 22-27).
void register_all() {
  proto::register_wire_messages();
  net::register_reliable_codecs();
}

acl::Version random_version(Rng& rng) {
  return acl::Version{rng.next_u64(),
                      HostId(static_cast<std::uint32_t>(rng.next_u64())),
                      static_cast<std::int64_t>(rng.next_u64())};
}

acl::RightSet random_rights(Rng& rng) {
  acl::RightSet rights;
  if ((rng.next_u64() & 1) != 0) rights.add(acl::Right::kUse);
  if ((rng.next_u64() & 1) != 0) rights.add(acl::Right::kManage);
  return rights;
}

acl::AclUpdate random_update(Rng& rng) {
  return acl::AclUpdate{
      UserId(static_cast<std::uint32_t>(rng.next_u64())),
      (rng.next_u64() & 1) != 0 ? acl::Right::kUse : acl::Right::kManage,
      (rng.next_u64() & 1) != 0 ? acl::Op::kAdd : acl::Op::kRevoke,
      random_version(rng)};
}

std::vector<acl::AclUpdate> random_snapshot(Rng& rng) {
  std::vector<acl::AclUpdate> snap;
  const std::size_t n = rng.next_u64() % 6;
  snap.reserve(n);
  for (std::size_t i = 0; i < n; ++i) snap.push_back(random_update(rng));
  return snap;
}

std::string random_payload(Rng& rng) {
  std::string s(rng.next_u64() % 48, '\0');
  for (char& c : s) c = static_cast<char>(rng.next_u64() & 0xFF);
  return s;
}

AppId random_app(Rng& rng) {
  return AppId(static_cast<std::uint32_t>(rng.next_u64()));
}
UserId random_user(Rng& rng) {
  return UserId(static_cast<std::uint32_t>(rng.next_u64()));
}

std::vector<proto::RevokeItem> random_items(Rng& rng) {
  std::vector<proto::RevokeItem> items;
  const std::size_t n = rng.next_u64() % 5;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(proto::RevokeItem{random_user(rng), random_version(rng)});
  }
  return items;
}

std::vector<HostId> random_hosts(Rng& rng) {
  std::vector<HostId> hosts;
  const std::size_t n = rng.next_u64() % 5;
  hosts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    hosts.push_back(HostId(static_cast<std::uint32_t>(rng.next_u64())));
  }
  return hosts;
}

shard::ShardMap random_shard_map(Rng& rng) {
  const std::uint32_t group_count =
      1 + static_cast<std::uint32_t>(rng.next_u64() % 3);
  std::uint32_t next = static_cast<std::uint32_t>(rng.next_u64() % 1000);
  std::vector<std::vector<HostId>> groups;
  for (std::uint32_t g = 0; g < group_count; ++g) {
    std::vector<HostId> group;
    const std::uint32_t members =
        1 + static_cast<std::uint32_t>(rng.next_u64() % 3);
    for (std::uint32_t m = 0; m < members; ++m) group.push_back(HostId(next++));
    groups.push_back(std::move(group));
  }
  const std::uint32_t shards =
      1 + static_cast<std::uint32_t>(rng.next_u64() % 8);
  std::vector<std::uint32_t> owner(shards);
  for (auto& o : owner) {
    o = static_cast<std::uint32_t>(rng.next_u64() % group_count);
  }
  return shard::ShardMap::assigned(std::move(groups), std::move(owner),
                                   rng.next_u64(), rng.next_u64());
}

/// One seeded generator per message type, in wire-tag order 1..27. Adding a
/// message type without extending this list fails the coverage check below.
std::vector<std::function<net::MessagePtr(Rng&)>> generators() {
  using net::make_message;
  return {
      [](Rng& rng) {
        return make_message<proto::InvokeRequest>(
            random_app(rng), random_user(rng), rng.next_u64(), rng.next_u64(),
            auth::Signature{rng.next_u64()}, random_payload(rng),
            rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::InvokeReply>(
            rng.next_u64(), (rng.next_u64() & 1) != 0,
            static_cast<proto::DenyReason>(rng.next_u64() % 5),
            random_payload(rng));
      },
      [](Rng& rng) {
        return make_message<proto::QueryRequest>(
            random_app(rng), random_user(rng), rng.next_u64(), rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::QueryResponse>(
            random_app(rng), random_user(rng), rng.next_u64(),
            random_rights(rng), random_version(rng),
            sim::Duration::nanos(static_cast<std::int64_t>(rng.next_u64())),
            rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::RevokeNotify>(
            random_app(rng), random_user(rng), random_version(rng),
            rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::RevokeNotifyAck>(
            random_app(rng), random_user(rng), random_version(rng));
      },
      [](Rng& rng) {
        return make_message<proto::UpdateMsg>(random_app(rng),
                                              random_update(rng),
                                              rng.next_u64(), rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::UpdateAck>(random_app(rng), rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::VersionQuery>(random_app(rng),
                                                 rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::VersionReply>(random_app(rng),
                                                 rng.next_u64(),
                                                 random_version(rng));
      },
      [](Rng& rng) {
        return make_message<proto::SyncRequest>(random_app(rng),
                                                rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::SyncResponse>(
            random_app(rng), rng.next_u64(), random_snapshot(rng));
      },
      [](Rng& rng) {
        return make_message<proto::SyncPush>(random_app(rng),
                                             random_snapshot(rng));
      },
      [](Rng& rng) {
        return make_message<proto::HeartbeatPing>(random_app(rng),
                                                  rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::HeartbeatPong>(random_app(rng),
                                                  rng.next_u64());
      },
      [](Rng& rng) {
        // The envelope wraps a complete encoded frame; decoders only require
        // the inner bytes to hold at least a frame header.
        const auto inner_msg =
            make_message<proto::HeartbeatPing>(random_app(rng), rng.next_u64());
        auto inner =
            CodecRegistry::global().encode(HostId(1), HostId(2), *inner_msg);
        return make_message<net::ReliableData>(
            1 + rng.next_u64() % 100000, rng.next_u64(), rng.next_u64(),
            inner.value_or(std::vector<std::uint8_t>(net::kWireHeaderSize)));
      },
      [](Rng& rng) {
        return make_message<net::ReliableAck>(rng.next_u64(), rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::ShardMapAnnounce>(random_app(rng),
                                                     random_shard_map(rng));
      },
      [](Rng& rng) {
        return make_message<proto::ShardHandoffBegin>(
            random_app(rng), rng.next_u64(),
            static_cast<std::uint32_t>(rng.next_u64()), rng.next_u64(),
            static_cast<std::uint32_t>(rng.next_u64()));
      },
      [](Rng& rng) {
        return make_message<proto::ShardHandoffChunk>(
            random_app(rng), rng.next_u64(),
            static_cast<std::uint32_t>(rng.next_u64()), rng.next_u64(),
            static_cast<std::uint32_t>(rng.next_u64()), random_snapshot(rng));
      },
      [](Rng& rng) {
        return make_message<proto::ShardHandoffDone>(
            random_app(rng), rng.next_u64(),
            static_cast<std::uint32_t>(rng.next_u64()), rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::RevokeBatch>(
            random_app(rng), rng.next_u64(), random_items(rng),
            rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::RevokeBatchAck>(random_app(rng),
                                                   rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::RelayForward>(
            random_app(rng), rng.next_u64(), random_items(rng),
            random_hosts(rng), rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::RelayAck>(random_app(rng), rng.next_u64(),
                                             random_hosts(rng));
      },
      [](Rng& rng) {
        return make_message<proto::DeltaSyncRequest>(
            random_app(rng), rng.next_u64(), rng.next_u64(), rng.next_u64());
      },
      [](Rng& rng) {
        return make_message<proto::DeltaSyncResponse>(
            random_app(rng), rng.next_u64(), (rng.next_u64() & 1) != 0,
            rng.next_u64(), rng.next_u64(), random_snapshot(rng));
      },
  };
}

std::vector<std::uint8_t> encode_or_die(const net::Message& msg,
                                        HostId from = HostId(11),
                                        HostId to = HostId(22)) {
  const auto frame = CodecRegistry::global().encode(from, to, msg);
  EXPECT_TRUE(frame.has_value());
  return frame.value_or(std::vector<std::uint8_t>{});
}

TEST(Codec, RegistryCoversEveryMessageType) {
  register_all();
  EXPECT_EQ(CodecRegistry::global().registered_count(),
            generators().size());
  // Tags are the frozen contiguous block 1..27 (docs/WIRE_FORMAT.md).
  const std::vector<net::WireTag> tags = CodecRegistry::global().tags();
  ASSERT_EQ(tags.size(), generators().size());
  for (std::size_t i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(tags[i], static_cast<net::WireTag>(i + 1));
  }
}

TEST(Codec, RegistrationIsIdempotent) {
  register_all();
  const std::size_t count = CodecRegistry::global().registered_count();
  register_all();  // must not abort on duplicate tags
  EXPECT_EQ(CodecRegistry::global().registered_count(), count);
}

// The core property: decode(encode(m)) succeeds, preserves the endpoint ids
// and the message type, and — because encoders are deterministic functions
// of the fields — re-encoding the decoded message reproduces the original
// bytes exactly. Byte-equality covers every field of every type at once; a
// single dropped, reordered, or misparsed field breaks it.
TEST(Codec, RandomizedRoundTripIsLosslessAndCanonical) {
  register_all();
  Rng rng{20260805};
  for (const auto& gen : generators()) {
    for (int iter = 0; iter < 64; ++iter) {
      const net::MessagePtr msg = gen(rng);
      const HostId from(static_cast<std::uint32_t>(rng.next_u64()));
      const HostId to(static_cast<std::uint32_t>(rng.next_u64()));
      const auto frame = CodecRegistry::global().encode(from, to, *msg);
      ASSERT_TRUE(frame.has_value()) << msg->type_name();
      const auto decoded =
          CodecRegistry::global().decode(frame->data(), frame->size());
      ASSERT_TRUE(decoded.ok())
          << msg->type_name() << ": " << net::to_cstring(decoded.error);
      EXPECT_EQ(decoded.frame->from, from);
      EXPECT_EQ(decoded.frame->to, to);
      EXPECT_EQ(decoded.frame->msg->type_id().value(), msg->type_id().value());
      const auto again =
          CodecRegistry::global().encode(from, to, *decoded.frame->msg);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*frame, *again) << msg->type_name();
    }
  }
}

// Byte-equality proves fidelity only if encoders read the fields; spot-check
// a representative message against explicit field values.
TEST(Codec, FieldFidelitySpotCheck) {
  register_all();
  acl::RightSet rights;
  rights.add(acl::Right::kUse);
  const acl::Version version{42, HostId(2), 777};
  const auto msg = net::make_message<proto::QueryResponse>(
      AppId(9), UserId(13), 555, rights, version,
      sim::Duration::millis(1250), 31337);
  const auto frame = encode_or_die(*msg);
  const auto decoded =
      CodecRegistry::global().decode(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok());
  const auto& out =
      static_cast<const proto::QueryResponse&>(*decoded.frame->msg);
  EXPECT_EQ(out.app, AppId(9));
  EXPECT_EQ(out.user, UserId(13));
  EXPECT_EQ(out.query_id, 555u);
  EXPECT_EQ(out.rights, rights);
  EXPECT_EQ(out.version, version);
  EXPECT_EQ(out.expiry_period, sim::Duration::millis(1250));
  EXPECT_EQ(out.trace, 31337u);
}

// Every strict prefix of every frame must be rejected — no partial parse,
// no out-of-bounds read. (ASAN-clean under the sanitizer CI job.)
TEST(CodecReject, EveryTruncationOfEveryFrame) {
  register_all();
  Rng rng{7};
  for (const auto& gen : generators()) {
    const net::MessagePtr msg = gen(rng);
    const auto frame = encode_or_die(*msg);
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const auto decoded = CodecRegistry::global().decode(frame.data(), len);
      EXPECT_FALSE(decoded.ok())
          << msg->type_name() << " parsed from a " << len << "-byte prefix";
    }
  }
}

TEST(CodecReject, HeaderFieldValidation) {
  register_all();
  const auto msg = net::make_message<proto::HeartbeatPing>(AppId(1), 99);
  const auto frame = encode_or_die(*msg);

  {
    auto bad = frame;
    bad[0] ^= 0xFF;  // magic
    EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
              DecodeError::kBadMagic);
  }
  {
    auto bad = frame;
    bad[2] = net::kWireVersion + 1;  // future format version
    EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
              DecodeError::kBadVersion);
  }
  {
    auto bad = frame;
    bad[3] = 0x80;  // reserved flags must be zero
    EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
              DecodeError::kBadVersion);
  }
  {
    auto bad = frame;
    const std::uint16_t tag = 999;  // never assigned
    std::memcpy(bad.data() + 4, &tag, sizeof tag);
    EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
              DecodeError::kUnknownTag);
  }
}

// The frame is exactly one datagram: any disagreement between the payload
// length field and the bytes actually present is truncation/padding.
TEST(CodecReject, PayloadLengthMustMatchDatagram) {
  register_all();
  const auto msg = net::make_message<proto::UpdateAck>(AppId(3), 4);
  const auto frame = encode_or_die(*msg);
  {
    auto bad = frame;
    bad.push_back(0);  // padded datagram
    EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
              DecodeError::kTruncated);
  }
  {
    auto bad = frame;
    bad.pop_back();  // truncated in flight
    EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
              DecodeError::kTruncated);
  }
}

// Non-canonical payload bytes: values a conforming encoder can never emit
// (booleans > 1, out-of-range enums, impossible right bits) are malformed,
// not silently coerced.
TEST(CodecReject, NonCanonicalPayloadBytes) {
  register_all();
  {
    // InvokeReply payload: request_id u64 @0, accepted u8 @8, reason u8 @9.
    const auto msg = net::make_message<proto::InvokeReply>(
        1, true, proto::DenyReason::kNone, "r");
    const auto frame = encode_or_die(*msg);
    auto bad = frame;
    bad[net::kWireHeaderSize + 8] = 2;  // boolean must be 0 or 1
    EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
              DecodeError::kMalformed);
    bad = frame;
    bad[net::kWireHeaderSize + 9] = 9;  // DenyReason has 5 values
    EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
              DecodeError::kMalformed);
  }
  {
    // QueryResponse payload: app u32, user u32, query_id u64, rights u8 @16.
    const auto msg = net::make_message<proto::QueryResponse>(
        AppId(1), UserId(2), 3, acl::RightSet{}, acl::Version{},
        sim::Duration::millis(1), 0);
    auto bad = encode_or_die(*msg);
    bad[net::kWireHeaderSize + 16] = 0xF0;  // bits beyond kUse|kManage
    EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
              DecodeError::kMalformed);
  }
}

// An adversarial snapshot count must be rejected by comparing it against the
// bytes actually present — not trusted into a reserve()/resize() call.
TEST(CodecReject, HostileSnapshotCountDoesNotAllocate) {
  register_all();
  const auto msg = net::make_message<proto::SyncResponse>(
      AppId(1), 2, std::vector<acl::AclUpdate>{});
  auto bad = encode_or_die(*msg);
  // SyncResponse payload: app u32 @0, sync_id u64 @4, count u32 @12.
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bad.data() + net::kWireHeaderSize + 12, &huge, sizeof huge);
  EXPECT_EQ(CodecRegistry::global().decode(bad.data(), bad.size()).error,
            DecodeError::kMalformed);
}

// Seeded garbage fuzz: random buffers must never crash the decoder, and a
// buffer that does not start with the magic can never decode.
TEST(CodecReject, GarbageBuffersNeverParse) {
  register_all();
  Rng rng{99};
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::uint8_t> buf(rng.next_u64() % 128);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto decoded = CodecRegistry::global().decode(buf.data(), buf.size());
    if (buf.size() < net::kWireHeaderSize ||
        buf[0] != 0xDC || buf[1] != 0xAC) {
      EXPECT_FALSE(decoded.ok());
    }
  }
  // Garbage behind a valid header prefix exercises the per-type decoders.
  const auto msg = net::make_message<proto::InvokeRequest>(
      AppId(1), UserId(2), 3, 4, auth::Signature{5}, "p", 6);
  const auto frame = encode_or_die(*msg);
  for (int iter = 0; iter < 4000; ++iter) {
    auto bad = frame;
    const std::size_t at =
        net::kWireHeaderSize + rng.next_u64() % (bad.size() - net::kWireHeaderSize);
    bad[at] = static_cast<std::uint8_t>(rng.next_u64());
    const auto decoded = CodecRegistry::global().decode(bad.data(), bad.size());
    if (decoded.ok()) {
      // A mutation may land on a byte whose value is unconstrained (ids,
      // counters, payload text): the decode must then still round-trip.
      const auto again = CodecRegistry::global().encode(
          decoded.frame->from, decoded.frame->to, *decoded.frame->msg);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, bad);
    }
  }
}

// Checked-in crash corpus: every datagram that has ever been rejected (or,
// for ok_*, accepted as a wire-stability pin) lives in tests/corpus/codec/
// and is replayed here. The filename prefix names the expected outcome, so
// adding a regression is dropping a .bin file in the directory — no code
// change. A decoder behavior change that reclassifies any corpus entry
// fails loudly instead of silently shifting drop-counter reasons.
TEST(CodecCorpus, EveryCheckedInFrameKeepsItsOutcome) {
  register_all();
  // Longest-prefix match: "bad_version" must win over a hypothetical "bad".
  const std::vector<std::pair<std::string, std::optional<DecodeError>>>
      outcomes = {
          {"ok", std::nullopt},
          {"truncated", DecodeError::kTruncated},
          {"bad_magic", DecodeError::kBadMagic},
          {"bad_version", DecodeError::kBadVersion},
          {"unknown_tag", DecodeError::kUnknownTag},
          {"malformed", DecodeError::kMalformed},
      };
  const std::filesystem::path dir = WAN_CODEC_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".bin") continue;
    const std::string name = entry.path().stem().string();
    std::optional<DecodeError> expected;
    std::size_t best = 0;
    for (const auto& [prefix, outcome] : outcomes) {
      if (prefix.size() > best && name.compare(0, prefix.size(), prefix) == 0) {
        best = prefix.size();
        expected = outcome;
      }
    }
    ASSERT_GT(best, 0u) << "corpus file with unknown outcome prefix: " << name;
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in) << entry.path();
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    const auto decoded =
        CodecRegistry::global().decode(bytes.data(), bytes.size());
    if (expected.has_value()) {
      EXPECT_FALSE(decoded.ok()) << name << " decoded but is pinned rejected";
      EXPECT_EQ(decoded.error, *expected)
          << name << ": got " << net::to_cstring(decoded.error);
    } else {
      ASSERT_TRUE(decoded.ok())
          << name << ": " << net::to_cstring(decoded.error);
    }
    ++seen;
  }
  // The corpus shipped with 14 entries, grew to 19 with the reliability
  // envelope (tags 16/17), to 25 with the shard messages (tags 18-21), and
  // to 35 with the dissemination/delta-sync messages (tags 22-27); it only
  // ever grows.
  EXPECT_GE(seen, 35u);
}

// Wire-stability pin for the richest shard message: the checked-in tag 18
// frame must decode to exactly this map and re-encode byte-identically.
TEST(CodecCorpus, OkShardMapAnnouncePinsWireLayout) {
  register_all();
  const std::filesystem::path file =
      std::filesystem::path(WAN_CODEC_CORPUS_DIR) / "ok_shard_map_announce.bin";
  std::ifstream in(file, std::ios::binary);
  ASSERT_TRUE(in) << file;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto decoded =
      CodecRegistry::global().decode(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << net::to_cstring(decoded.error);
  EXPECT_EQ(decoded.frame->from, HostId(3));
  EXPECT_EQ(decoded.frame->to, HostId(1));
  const auto& announce =
      static_cast<const proto::ShardMapAnnounce&>(*decoded.frame->msg);
  EXPECT_EQ(announce.app, AppId(7));
  const shard::ShardMap expected = shard::ShardMap::assigned(
      {{HostId(0), HostId(1)}, {HostId(2), HostId(3)}}, {1, 0, 1}, 5);
  EXPECT_EQ(announce.map, expected);
  const auto again = CodecRegistry::global().encode(
      decoded.frame->from, decoded.frame->to, *decoded.frame->msg);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, bytes);
}

// Same wire-stability pin for the reliability envelope: the checked-in tag 17
// ack frame must decode to these exact fields and re-encode byte-identically.
TEST(CodecCorpus, OkReliableAckPinsWireLayout) {
  register_all();
  const std::filesystem::path file =
      std::filesystem::path(WAN_CODEC_CORPUS_DIR) / "ok_reliable_ack.bin";
  std::ifstream in(file, std::ios::binary);
  ASSERT_TRUE(in) << file;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), net::kWireHeaderSize + 16u);
  const auto decoded =
      CodecRegistry::global().decode(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << net::to_cstring(decoded.error);
  EXPECT_EQ(decoded.frame->from, HostId(2));
  EXPECT_EQ(decoded.frame->to, HostId(1));
  const auto& ack = static_cast<const net::ReliableAck&>(*decoded.frame->msg);
  EXPECT_EQ(ack.cum_ack, 5u);
  EXPECT_EQ(ack.ack_bits, 0b1010u);
  const auto again = CodecRegistry::global().encode(
      decoded.frame->from, decoded.frame->to, *decoded.frame->msg);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, bytes);
}

// The one accepted corpus frame is a wire-stability pin: these exact bytes
// must decode to these exact field values forever (docs/WIRE_FORMAT.md
// freezes the layout). Regenerating the frame from current encoders would
// test nothing — the bytes on disk are the contract.
TEST(CodecCorpus, OkHeartbeatPingPinsWireLayout) {
  register_all();
  const std::filesystem::path file =
      std::filesystem::path(WAN_CODEC_CORPUS_DIR) / "ok_heartbeat_ping.bin";
  std::ifstream in(file, std::ios::binary);
  ASSERT_TRUE(in) << file;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), net::kWireHeaderSize + 12u);
  const auto decoded =
      CodecRegistry::global().decode(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << net::to_cstring(decoded.error);
  EXPECT_EQ(decoded.frame->from, HostId(1));
  EXPECT_EQ(decoded.frame->to, HostId(2));
  const auto& ping =
      static_cast<const proto::HeartbeatPing&>(*decoded.frame->msg);
  EXPECT_EQ(ping.app, AppId(7));
  EXPECT_EQ(ping.seq, 4242u);
  // And the canonical re-encode reproduces the checked-in bytes.
  const auto again = CodecRegistry::global().encode(
      decoded.frame->from, decoded.frame->to, *decoded.frame->msg);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, bytes);
}

// Oversize frames fail at encode time (they could never fit one datagram).
TEST(CodecReject, OversizePayloadFailsEncode) {
  register_all();
  const auto msg = net::make_message<proto::InvokeRequest>(
      AppId(1), UserId(2), 3, 4, auth::Signature{5},
      std::string(net::kMaxFrameSize, 'x'), 6);
  EXPECT_FALSE(
      CodecRegistry::global().encode(HostId(1), HostId(2), *msg).has_value());
}

}  // namespace
}  // namespace wan
