// Observability tests: metric registry handle semantics and exposition,
// counter exactness under real-thread concurrency, the zero-cost-when-off
// tracer guard, span causality over a full simulated revocation, and the
// bit-identical-trace guarantee across identical SimEnv runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/te_probe.hpp"
#include "obs/trace.hpp"
#include "runtime/threaded_env.hpp"
#include "util/logging.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using obs::Registry;
using obs::SpanKind;
using obs::TeProbe;
using obs::TeReport;
using obs::TraceEvent;
using obs::Tracer;
using obs::TracerScope;
using sim::Duration;
using sim::TimePoint;

// ------------------------------------------------------------- Registry

TEST(Registry, HandlesAreStableAndValuesExposed) {
  auto& reg = Registry::global();
  obs::Counter& c = reg.counter("wan_test_stable_total{case=\"a\"}");
  const std::uint64_t before = c.value();
  c.inc();
  c.inc();
  EXPECT_EQ(c.value(), before + 2);
  // Same name must return the same object — handles are cached by callers.
  EXPECT_EQ(&c, &reg.counter("wan_test_stable_total{case=\"a\"}"));

  obs::Gauge& g = reg.gauge("wan_test_stable_gauge");
  g.set(-3);
  g.add(5);
  EXPECT_EQ(g.value(), 2);

  obs::Histo& h = reg.histogram("wan_test_stable_seconds");
  h.observe_seconds(0.25);
  h.observe(Duration::millis(750));

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE wan_test_stable_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("wan_test_stable_total{case=\"a\"}"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wan_test_stable_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("wan_test_stable_gauge 2"), std::string::npos);
  EXPECT_NE(text.find("wan_test_stable_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("wan_test_stable_seconds{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(Registry, FamilyHeaderEmittedOncePerLabelSet) {
  auto& reg = Registry::global();
  reg.counter("wan_test_family_total{path=\"x\"}").inc();
  reg.counter("wan_test_family_total{path=\"y\"}").inc();
  const std::string text = reg.prometheus_text();
  std::size_t count = 0;
  for (std::size_t pos = text.find("# TYPE wan_test_family_total counter");
       pos != std::string::npos;
       pos = text.find("# TYPE wan_test_family_total counter", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Registry, CounterIsExactUnderThreadConcurrency) {
  auto& reg = Registry::global();
  obs::Counter& c = reg.counter("wan_test_concurrent_total");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.inc();
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), before + static_cast<std::uint64_t>(kThreads) *
                                    static_cast<std::uint64_t>(kIncrements));
}

TEST(Registry, CounterIsExactUnderThreadedEnvConcurrency) {
  auto& reg = Registry::global();
  obs::Counter& c = reg.counter("wan_test_threaded_env_total");
  const std::uint64_t before = c.value();
  constexpr int kEnvs = 4;
  constexpr int kPosts = 2000;
  runtime::LoopbackFabric fabric;
  {
    std::vector<std::unique_ptr<runtime::ThreadedEnv>> envs;
    for (int i = 0; i < kEnvs; ++i) {
      envs.push_back(std::make_unique<runtime::ThreadedEnv>(fabric));
    }
    for (auto& env : envs) {
      for (int i = 0; i < kPosts; ++i) env->post([&c] { c.inc(); });
    }
    // run_sync posts behind the increments on each loop, so returning from
    // all four means every increment has executed.
    for (auto& env : envs) env->run_sync([] {});
    fabric.stop_all();
  }
  EXPECT_EQ(c.value(), before + static_cast<std::uint64_t>(kEnvs) *
                                    static_cast<std::uint64_t>(kPosts));
}

// --------------------------------------------------------------- Tracer

TEST(Tracer, DisabledRecordingIsANoOp) {
  ASSERT_EQ(obs::tracer(), nullptr);
  EXPECT_FALSE(obs::enabled());
  // Must not crash, allocate into any sink, or observably do anything.
  obs::record(obs::mint(obs::TraceKind::kCheck, HostId(1), 1),
              SpanKind::kBegin, HostId(1), TimePoint::from_nanos(0),
              "test.noop");
}

TEST(Tracer, RecordsInstallsAndUninstalls) {
  Tracer t;
  {
    const TracerScope scope(&t);
    EXPECT_TRUE(obs::enabled());
    obs::record(obs::mint(obs::TraceKind::kCheck, HostId(3), 1),
                SpanKind::kBegin, HostId(3),
                TimePoint::from_nanos(1500000000), "test.begin", 7, 9);
    obs::record(obs::mint(obs::TraceKind::kCheck, HostId(3), 1),
                SpanKind::kDecision, HostId(3),
                TimePoint::from_nanos(2500000000), "test.decide");
  }
  EXPECT_FALSE(obs::enabled());
  ASSERT_EQ(t.size(), 2u);
  const std::string text = t.text();
  EXPECT_NE(text.find("test.begin"), std::string::npos);
  EXPECT_NE(text.find("test.decide"), std::string::npos);
  EXPECT_NE(text.find("a0=7"), std::string::npos);
  // text() is a pure function of the recorded events.
  EXPECT_EQ(text, t.text());
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.begin"), std::string::npos);
}

TEST(Tracer, CapacityBoundCountsDrops) {
  Tracer t(4);
  const TracerScope scope(&t);
  for (int i = 0; i < 6; ++i) {
    obs::record(1, SpanKind::kInstant, HostId(1),
                TimePoint::from_nanos(i), "test.cap");
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
}

TEST(Tracer, LogLinesAreMirroredIntoTrace) {
  Tracer t;
  const TracerScope scope(&t);
  log::set_sink([](log::Level, const std::string&) {});  // silence stderr
  log::set_level(log::Level::kInfo);
  WAN_INFO << "hello trace mirror";
  log::set_level(log::Level::kOff);
  log::reset_sink();
  const auto lines = t.log_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("hello trace mirror"), std::string::npos);
}

TEST(Tracer, ConcurrentRecordingLosesNothing) {
  Tracer t;
  const TracerScope scope(&t);
  constexpr int kThreads = 8;
  constexpr int kEvents = 10000;
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([w] {
      for (int i = 0; i < kEvents; ++i) {
        obs::record(obs::mint(obs::TraceKind::kInvoke,
                              HostId(static_cast<std::uint32_t>(w)), 1),
                    SpanKind::kInstant,
                    HostId(static_cast<std::uint32_t>(w)),
                    TimePoint::from_nanos(i), "test.mt");
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(t.size(),
            static_cast<std::size_t>(kThreads) * static_cast<std::size_t>(kEvents));
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Mint, NeverZeroAndDisjointAcrossKindsAndNodes) {
  const auto a = obs::mint(obs::TraceKind::kCheck, HostId(1), 1);
  const auto b = obs::mint(obs::TraceKind::kUpdate, HostId(1), 1);
  const auto c = obs::mint(obs::TraceKind::kCheck, HostId(2), 1);
  const auto d = obs::mint(obs::TraceKind::kCheck, HostId(1), 2);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

// -------------------------------------------------------------- TeProbe

TEST(TeProbe, MeasuresLatenessAndFlagsViolations) {
  const auto quorum = [](std::int64_t at_s, std::uint32_t user, bool revoke) {
    TraceEvent e;
    e.trace = 1;
    e.at_nanos = at_s * 1000000000;
    e.name = "update.quorum";
    e.kind = SpanKind::kDecision;
    e.a0 = user;
    e.a1 = revoke ? 1 : 0;
    return e;
  };
  const auto allow = [](std::int64_t at_s, std::uint32_t user) {
    TraceEvent e;
    e.trace = 2;
    e.at_nanos = at_s * 1000000000;
    e.name = "check.decide";
    e.kind = SpanKind::kDecision;
    e.a0 = user;
    e.a1 = (1 << 8) | 0;  // allowed, cache-hit path
    return e;
  };

  // Within bound: revoke at t=0, last stale allow at t=5, bound 10.
  const TeReport ok = TeProbe::analyze({quorum(0, 7, true), allow(5, 7)},
                                       Duration::seconds(10));
  EXPECT_EQ(ok.revocations, 1u);
  EXPECT_EQ(ok.measured, 1u);
  EXPECT_EQ(ok.violations, 0u);
  EXPECT_DOUBLE_EQ(ok.max_seconds, 5.0);
  EXPECT_TRUE(ok.ok());

  // Beyond bound: stale allow 15s after quorum against a 10s bound.
  const TeReport bad = TeProbe::analyze({quorum(0, 7, true), allow(15, 7)},
                                        Duration::seconds(10));
  EXPECT_EQ(bad.violations, 1u);
  EXPECT_FALSE(bad.ok());

  // A re-grant closes the record: allows after it are legitimate.
  const TeReport regrant = TeProbe::analyze(
      {quorum(0, 7, true), allow(3, 7), quorum(4, 7, false), allow(20, 7)},
      Duration::seconds(10));
  EXPECT_EQ(regrant.violations, 0u);
  EXPECT_DOUBLE_EQ(regrant.max_seconds, 3.0);

  // Allows for a different user never attribute to the open revocation.
  const TeReport other = TeProbe::analyze({quorum(0, 7, true), allow(15, 8)},
                                          Duration::seconds(10));
  EXPECT_EQ(other.measured, 0u);
  EXPECT_EQ(other.violations, 0u);
}

// ------------------------------------------- full-stack spans over SimEnv

workload::ScenarioConfig traced_scenario_config() {
  workload::ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 2;
  cfg.partitions = workload::ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(30);
  cfg.protocol.clock_bound_b = 1.0;
  cfg.seed = 99;
  return cfg;
}

// Grant -> warm caches -> revoke -> let notify flush -> probe again. Every
// call sequence below is deterministic given the seed.
std::vector<TraceEvent> traced_run(Tracer* tracer) {
  const TracerScope scope(tracer);
  workload::Scenario s(traced_scenario_config());
  s.grant(s.user(0), 0);
  s.run_for(Duration::seconds(5));
  s.check(0, s.user(0));
  s.check(1, s.user(0));
  s.run_for(Duration::seconds(2));
  s.revoke(s.user(0), 1);
  s.run_for(Duration::seconds(5));
  s.check(0, s.user(0));
  s.check(1, s.user(0));
  s.run_for(Duration::seconds(40));
  return tracer->events();
}

bool name_is(const TraceEvent& e, const char* n) {
  return std::strcmp(e.name, n) == 0;
}

TEST(Spans, RevocationChainIsCausallyOrdered) {
  Tracer tracer;
  const auto events = traced_run(&tracer);
  ASSERT_FALSE(events.empty());

  // Find the revoke's update chain (update.submit with a1 = 1).
  obs::TraceId revoke_trace = 0;
  std::int64_t submit_at = 0;
  for (const auto& e : events) {
    if (name_is(e, "update.submit") && e.a1 == 1) {
      revoke_trace = e.trace;
      submit_at = e.at_nanos;
    }
  }
  ASSERT_NE(revoke_trace, 0u) << "no revoke was submitted";

  // The chain must reach quorum after submission, fan out RevokeNotify after
  // quorum-side issue, and flush at least one host cache after the sends —
  // all on the SAME trace id, recorded by different nodes.
  std::int64_t quorum_at = -1;
  std::int64_t first_notify_at = -1;
  std::int64_t first_flush_at = -1;
  for (const auto& e : events) {
    if (e.trace != revoke_trace) continue;
    if (name_is(e, "update.quorum")) quorum_at = e.at_nanos;
    if (name_is(e, "revoke.notify.send") &&
        (first_notify_at < 0 || e.at_nanos < first_notify_at)) {
      first_notify_at = e.at_nanos;
    }
    if (name_is(e, "revoke.flush") &&
        (first_flush_at < 0 || e.at_nanos < first_flush_at)) {
      first_flush_at = e.at_nanos;
    }
  }
  ASSERT_GE(quorum_at, 0) << "revoke never reached update quorum";
  ASSERT_GE(first_notify_at, 0) << "no RevokeNotify fanned out";
  ASSERT_GE(first_flush_at, 0) << "no host flushed its cache";
  EXPECT_GE(quorum_at, submit_at);
  EXPECT_GE(first_flush_at, first_notify_at);

  // Every check session that began also decided, never before it began.
  for (const auto& begin : events) {
    if (!name_is(begin, "check.begin")) continue;
    bool decided = false;
    for (const auto& e : events) {
      if (e.trace == begin.trace && name_is(e, "check.decide") &&
          e.at_nanos >= begin.at_nanos) {
        decided = true;
      }
    }
    EXPECT_TRUE(decided) << "undecided check session";
  }

  // The empirical-Te probe over the same span stream: the bound must hold.
  const TeReport te =
      TeProbe::analyze(events, traced_scenario_config().protocol.Te);
  EXPECT_GE(te.revocations, 1u);
  EXPECT_EQ(te.violations, 0u);
  EXPECT_LE(te.max_seconds, te.bound_seconds);
}

TEST(Spans, IdenticalRunsProduceIdenticalTraces) {
  Tracer first;
  Tracer second;
  (void)traced_run(&first);
  (void)traced_run(&second);
  ASSERT_GT(first.size(), 0u);
  EXPECT_EQ(first.text(), second.text());
}

}  // namespace
}  // namespace wan
