// Sharded-deployment integration tests: the full Figure-1 world running with
// the key space partitioned across manager groups (src/shard/shard_map.hpp).
//
// These cover the system-level guarantees the unit tests cannot: that a
// sharded deployment grants/checks/revokes end to end with every manager
// holding ONLY its slice, that mis-routed traffic is refused rather than
// answered, that recovery sync transfers only the requester's owned shards
// (the resync-scoping regression), and that a live rebalance — old group
// leaving, slices handed off mid-workload, a revoke racing the transfer —
// flips atomically without a single security violation.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "acl/store.hpp"
#include "proto/decision.hpp"
#include "proto/manager.hpp"
#include "shard/shard_map.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using proto::DecisionPath;
using shard::ShardMap;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

/// Every entry in the manager's store belongs to a shard its group owns
/// under `map` — the slice-scoping invariant of a sharded deployment.
bool store_scoped_to(const proto::ManagerModule& m, AppId app,
                     const ShardMap& map, HostId id) {
  const acl::AclStore* st = m.store(app);
  if (st == nullptr) return true;
  for (const acl::AclUpdate& u : st->snapshot()) {
    if (!map.owns(id, app, u.user)) return false;
  }
  return true;
}

/// The entry for `user` in the manager's store, if any.
std::optional<acl::AclUpdate> store_entry(const proto::ManagerModule& m,
                                          AppId app, UserId user) {
  const acl::AclStore* st = m.store(app);
  if (st == nullptr) return std::nullopt;
  for (const acl::AclUpdate& u : st->snapshot()) {
    if (u.user == user) return u;
  }
  return std::nullopt;
}

TEST(ShardIntegration, ShardedDeploymentGrantsChecksAndRevokes) {
  ScenarioConfig cfg;
  cfg.managers = 4;
  cfg.shard_groups = 2;
  cfg.shard_count = 8;
  cfg.app_hosts = 2;
  cfg.users = 16;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::millis(500);
  cfg.seed = 7001;
  Scenario s(cfg);
  const AppId app = s.app();
  const ShardMap& map = s.shard_map();
  ASSERT_FALSE(map.empty());
  ASSERT_EQ(map.groups().size(), 2u);

  for (int i = 0; i < cfg.users; ++i) {
    ASSERT_TRUE(s.grant(s.user(i)));
  }
  s.run_for(Duration::seconds(2));

  // Each manager holds exactly its group's slice, and the two slices cover
  // the whole granted population.
  for (int i = 0; i < cfg.managers; ++i) {
    auto& m = s.manager(i).manager();
    EXPECT_TRUE(m.synced(app)) << "manager " << i;
    EXPECT_TRUE(store_scoped_to(m, app, map, s.manager_ids()[i]))
        << "manager " << i << " holds entries outside its shards";
    EXPECT_EQ(m.queries_refused_unowned(), 0u);
    EXPECT_EQ(m.submits_refused_unowned(), 0u);
  }
  const std::size_t covered =
      s.manager(0).manager().store(app)->register_count() +
      s.manager(2).manager().store(app)->register_count();
  EXPECT_EQ(covered, static_cast<std::size_t>(cfg.users));
  // Both groups must actually own part of the population for this test to
  // exercise routing (deterministic under the pinned ring seed).
  EXPECT_GT(s.manager(0).manager().store(app)->register_count(), 0u);
  EXPECT_GT(s.manager(2).manager().store(app)->register_count(), 0u);

  // Every user checks allowed through the shard-routed controller path.
  std::vector<std::optional<bool>> verdicts(static_cast<std::size_t>(cfg.users));
  for (int i = 0; i < cfg.users; ++i) {
    s.check(i % cfg.app_hosts, s.user(i),
            [&verdicts, i](const AccessDecision& d) {
              verdicts[static_cast<std::size_t>(i)] = d.allowed;
            });
  }
  s.run_for(Duration::seconds(2));
  for (int i = 0; i < cfg.users; ++i) {
    ASSERT_TRUE(verdicts[static_cast<std::size_t>(i)].has_value())
        << "check " << i << " never decided";
    EXPECT_TRUE(*verdicts[static_cast<std::size_t>(i)]) << "user " << i;
  }

  // A revoke routed through the owner group is enforced once caches expire.
  const UserId victim = s.user(3);
  ASSERT_TRUE(s.revoke(victim));
  s.run_for(Duration::seconds(6));  // > Te: host caches of the old grant die
  std::optional<bool> after;
  s.check(0, victim, [&after](const AccessDecision& d) { after = d.allowed; });
  s.run_for(Duration::seconds(2));
  ASSERT_TRUE(after.has_value());
  EXPECT_FALSE(*after);

  const auto report = s.collector().report();
  EXPECT_GT(report.total, 0u);
  EXPECT_EQ(report.security_violations, 0u);
}

TEST(ShardIntegration, MisroutedTrafficIsRefusedNotAnswered) {
  ScenarioConfig cfg;
  cfg.managers = 4;
  cfg.shard_groups = 2;
  cfg.shard_count = 4;
  cfg.app_hosts = 1;
  cfg.users = 8;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.protocol.max_attempts = 2;
  cfg.protocol.query_timeout = Duration::millis(200);
  cfg.seed = 7002;
  Scenario s(cfg);
  const AppId app = s.app();
  const ShardMap& map = s.shard_map();

  const UserId u0 = s.user(0);
  ASSERT_TRUE(s.grant(u0));
  s.run_for(Duration::seconds(1));

  // A submit addressed directly at a non-owner module is refused and its
  // callback dropped — the mis-routed-write counter is the only trace.
  const std::uint32_t owner_g = map.group_of_shard(map.shard_of(app, u0));
  const std::uint32_t wrong_g = 1 - owner_g;
  const int wrong_idx = static_cast<int>(wrong_g) * 2;  // first member
  auto& wrong_mgr = s.manager(wrong_idx).manager();
  const std::uint64_t before = wrong_mgr.submits_refused_unowned();
  wrong_mgr.submit_update(app, acl::Op::kAdd, u0, acl::Right::kUse,
                          [](const proto::UpdateOutcome&) { FAIL(); });
  s.run_for(Duration::seconds(1));
  EXPECT_EQ(wrong_mgr.submits_refused_unowned(), before + 1);
  EXPECT_FALSE(store_entry(wrong_mgr, app, u0).has_value());

  // A host with a wrong (owner-swapped) map sends its queries to the
  // non-owner group; the managers refuse rather than answer from a slice
  // they do not hold, and the check falls through to the no-quorum policy.
  std::vector<std::uint32_t> swapped = map.owners();
  for (auto& o : swapped) o = 1 - o;
  ShardMap bad = ShardMap::assigned(map.groups(), std::move(swapped),
                                    /*epoch=*/2, map.ring_seed());
  s.host(0).controller().install_shard_map(app, bad);

  std::optional<AccessDecision> d;
  s.check(0, u0, [&d](const AccessDecision& dec) { d = dec; });
  s.run_for(Duration::seconds(3));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->path == DecisionPath::kDefaultAllow ||
              d->path == DecisionPath::kUnverifiableDeny)
      << "path=" << proto::to_cstring(d->path);
  std::uint64_t refused = 0;
  for (const HostId m : map.group(wrong_g)) {
    for (int i = 0; i < cfg.managers; ++i) {
      if (s.manager_ids()[static_cast<std::size_t>(i)] == m) {
        refused += s.manager(i).manager().queries_refused_unowned();
      }
    }
  }
  EXPECT_GE(refused, 1u);
}

// Satellite regression: recovery sync must transfer ONLY the shards the
// requester's group owns. The trap is a store with residual unowned entries
// (granted flat, sharded later): an unscoped responder would ship its whole
// store. The sync_entries_sent counter pins the scoped transfer size.
TEST(ShardIntegration, RecoverySyncScopedToRequestersShards) {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 1;
  cfg.users = 12;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.seed = 7003;
  Scenario s(cfg);
  const AppId app = s.app();

  // Flat phase: every store ends up with all 12 users.
  for (int i = 0; i < cfg.users; ++i) ASSERT_TRUE(s.grant(s.user(i), /*mgr=*/0));
  s.run_for(Duration::seconds(2));
  for (int i = 0; i < cfg.managers; ++i) {
    ASSERT_EQ(s.manager(i).manager().store(app)->register_count(), 12u);
  }

  // Shard it after the fact: three singleton groups. Residual unowned
  // entries deliberately stay in every store (only a rebalance commit drops
  // slices) — exactly the state an unscoped resync would leak.
  ShardMap map = ShardMap::ring(
      {{s.manager_ids()[0]}, {s.manager_ids()[1]}, {s.manager_ids()[2]}},
      /*shard_count=*/9, /*epoch=*/2);
  for (int i = 0; i < cfg.managers; ++i) {
    s.manager(i).manager().set_shard_map(app, map);
  }
  std::size_t owned_by_2 = 0;
  for (int i = 0; i < cfg.users; ++i) {
    if (map.owns(s.manager_ids()[2], app, s.user(i))) ++owned_by_2;
  }
  ASSERT_GT(owned_by_2, 0u);
  ASSERT_LT(owned_by_2, 12u);

  s.manager(2).crash();
  s.run_for(Duration::millis(200));
  s.manager(2).recover();
  s.run_for(Duration::seconds(3));

  auto& m2 = s.manager(2).manager();
  EXPECT_TRUE(m2.synced(app));
  // Each of the C=2 responders sent exactly the requester's slice, not its
  // full 12-entry store.
  const std::uint64_t sent = s.manager(0).manager().sync_entries_sent() +
                             s.manager(1).manager().sync_entries_sent();
  EXPECT_EQ(sent, 2u * owned_by_2);
  // The recovered manager holds its slice and nothing else; the responders'
  // residual entries were neither shipped nor merged.
  EXPECT_EQ(m2.store(app)->register_count(), owned_by_2);
  EXPECT_TRUE(store_scoped_to(m2, app, map, s.manager_ids()[2]));
  // Untouched peers keep their full stores (residuals stand until a real
  // rebalance commit drops them).
  EXPECT_EQ(s.manager(0).manager().store(app)->register_count(), 12u);
}

TEST(ShardIntegration, LiveRebalanceHoldsTeAcrossTheFlip) {
  ScenarioConfig cfg;
  cfg.managers = 6;
  cfg.shard_groups = 3;
  cfg.shard_count = 12;
  cfg.app_hosts = 2;
  cfg.users = 18;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::millis(500);
  cfg.seed = 7004;
  Scenario s(cfg);
  const AppId app = s.app();
  const ShardMap old_map = s.shard_map();
  ASSERT_EQ(old_map.groups().size(), 3u);

  // The next epoch: group 2 leaves. Ring monotonicity moves ONLY its shards.
  const ShardMap next = ShardMap::ring({old_map.group(0), old_map.group(1)},
                                       cfg.shard_count, /*epoch=*/2);
  for (std::uint32_t sh = 0; sh < cfg.shard_count; ++sh) {
    if (old_map.group_of_shard(sh) != 2) {
      EXPECT_EQ(next.group_of_shard(sh), old_map.group_of_shard(sh))
          << "shard " << sh << " moved although its group stayed";
    }
  }

  // Grant the first 16 users; pick a mover (owned by the leaving group) and
  // a stayer for the post-flip probes.
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(s.grant(s.user(i)));
  std::optional<UserId> mover, stayer;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t g =
        old_map.group_of_shard(old_map.shard_of(app, s.user(i)));
    if (g == 2 && !mover) mover = s.user(i);
    if (g != 2 && !stayer) stayer = s.user(i);
  }
  ASSERT_TRUE(mover.has_value()) << "no granted user on the leaving group";
  ASSERT_TRUE(stayer.has_value());

  auto& sched = s.scheduler();

  // Background checks across the whole run keep the collector's Te audit hot
  // through the handoff and the flip.
  for (int t = 0; t < 38; ++t) {
    sched.schedule_after(Duration::millis(500 + 250 * t), [&s, t] {
      s.check(t % 2, s.user((t * 7) % 16));
    });
  }

  // t=3s: every manager starts the handoff (only leaving-group members
  // actually stream slices; the rest just record the proposed epoch).
  sched.schedule_after(Duration::seconds(3), [&] {
    for (int i = 0; i < cfg.managers; ++i) {
      s.manager(i).manager().begin_shard_handoff(app, next);
    }
  });

  // t=3.2s: a revoke races the transfer. It lands on the OLD owner (group 2
  // still routes the key), and the re-snapshotting sender must carry it into
  // the slice the new owners activate.
  sched.schedule_after(Duration::millis(3200), [&] {
    ASSERT_TRUE(s.revoke(*mover));
  });

  // Poll the leaving group; the commit runs in the SAME scheduler event that
  // observed drained — atomic catch-up-then-flip.
  bool flipped = false;
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&, poll] {
    if (flipped) return;
    if (s.manager(4).manager().handoff_drained(app) &&
        s.manager(5).manager().handoff_drained(app)) {
      for (int i = 0; i < cfg.managers; ++i) {
        s.manager(i).manager().commit_shard_map(app, next);
      }
      s.publish_shard_map(next);
      flipped = true;
      return;
    }
    sched.schedule_after(Duration::millis(100), *poll);
  };
  sched.schedule_after(Duration::millis(3400), *poll);

  // Post-flip probes, all well past the revoke's Te window.
  std::optional<bool> mover_allowed, stayer_allowed, late_allowed;
  sched.schedule_after(Duration::millis(9500), [&] {
    s.check(0, *mover,
            [&](const AccessDecision& d) { mover_allowed = d.allowed; });
    s.check(1, *stayer,
            [&](const AccessDecision& d) { stayer_allowed = d.allowed; });
  });
  // A brand-new grant after the flip routes through the NEW map.
  sched.schedule_after(Duration::millis(8500), [&] {
    ASSERT_TRUE(s.grant(s.user(17)));
  });
  sched.schedule_after(Duration::millis(9800), [&] {
    s.check(0, s.user(17),
            [&](const AccessDecision& d) { late_allowed = d.allowed; });
  });

  s.run_for(Duration::millis(10500));

  ASSERT_TRUE(flipped) << "handoff never drained";
  // The departed group dropped every slice it handed off...
  EXPECT_EQ(s.manager(4).manager().store(app)->register_count(), 0u);
  EXPECT_EQ(s.manager(5).manager().store(app)->register_count(), 0u);
  // ...and the survivors activated everything they gained.
  for (int i = 0; i < 4; ++i) {
    auto& m = s.manager(i).manager();
    EXPECT_EQ(m.pending_shards(app), 0u) << "manager " << i;
    EXPECT_TRUE(store_scoped_to(m, app, next, s.manager_ids()[i]))
        << "manager " << i;
  }
  // The racing revoke travelled with the slice: the new owner group holds
  // the mover as REVOKED, and checks deny it after the flip.
  const std::uint32_t new_g = next.group_of_shard(next.shard_of(app, *mover));
  const int new_owner_idx = static_cast<int>(new_g) * 2;
  const auto entry =
      store_entry(s.manager(new_owner_idx).manager(), app, *mover);
  ASSERT_TRUE(entry.has_value()) << "mover's entry did not transfer";
  EXPECT_EQ(entry->op, acl::Op::kRevoke);
  ASSERT_TRUE(mover_allowed.has_value());
  EXPECT_FALSE(*mover_allowed);
  ASSERT_TRUE(stayer_allowed.has_value());
  EXPECT_TRUE(*stayer_allowed);
  ASSERT_TRUE(late_allowed.has_value());
  EXPECT_TRUE(*late_allowed);

  const auto report = s.collector().report();
  EXPECT_GT(report.total, 0u);
  EXPECT_EQ(report.security_violations, 0u);
}

}  // namespace
}  // namespace wan
