// Sharded-deployment integration tests: the full Figure-1 world running with
// the key space partitioned across manager groups (src/shard/shard_map.hpp).
//
// These cover the system-level guarantees the unit tests cannot: that a
// sharded deployment grants/checks/revokes end to end with every manager
// holding ONLY its slice, that mis-routed traffic is refused rather than
// answered, that recovery sync transfers only the requester's owned shards
// (the resync-scoping regression), and that a live rebalance — old group
// leaving, slices handed off mid-workload, a revoke racing the transfer —
// flips atomically without a single security violation.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "acl/store.hpp"
#include "proto/decision.hpp"
#include "proto/manager.hpp"
#include "shard/shard_map.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using proto::DecisionPath;
using shard::ShardMap;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

/// Every entry in the manager's store belongs to a shard its group owns
/// under `map` — the slice-scoping invariant of a sharded deployment.
bool store_scoped_to(const proto::ManagerModule& m, AppId app,
                     const ShardMap& map, HostId id) {
  const acl::AclStore* st = m.store(app);
  if (st == nullptr) return true;
  for (const acl::AclUpdate& u : st->snapshot()) {
    if (!map.owns(id, app, u.user)) return false;
  }
  return true;
}

/// The entry for `user` in the manager's store, if any.
std::optional<acl::AclUpdate> store_entry(const proto::ManagerModule& m,
                                          AppId app, UserId user) {
  const acl::AclStore* st = m.store(app);
  if (st == nullptr) return std::nullopt;
  for (const acl::AclUpdate& u : st->snapshot()) {
    if (u.user == user) return u;
  }
  return std::nullopt;
}

TEST(ShardIntegration, ShardedDeploymentGrantsChecksAndRevokes) {
  ScenarioConfig cfg;
  cfg.managers = 4;
  cfg.shard_groups = 2;
  cfg.shard_count = 8;
  cfg.app_hosts = 2;
  cfg.users = 16;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::millis(500);
  cfg.seed = 7001;
  Scenario s(cfg);
  const AppId app = s.app();
  const ShardMap& map = s.shard_map();
  ASSERT_FALSE(map.empty());
  ASSERT_EQ(map.groups().size(), 2u);

  for (int i = 0; i < cfg.users; ++i) {
    ASSERT_TRUE(s.grant(s.user(i)));
  }
  s.run_for(Duration::seconds(2));

  // Each manager holds exactly its group's slice, and the two slices cover
  // the whole granted population.
  for (int i = 0; i < cfg.managers; ++i) {
    auto& m = s.manager(i).manager();
    EXPECT_TRUE(m.synced(app)) << "manager " << i;
    EXPECT_TRUE(store_scoped_to(m, app, map, s.manager_ids()[i]))
        << "manager " << i << " holds entries outside its shards";
    EXPECT_EQ(m.queries_refused_unowned(), 0u);
    EXPECT_EQ(m.submits_refused_unowned(), 0u);
  }
  const std::size_t covered =
      s.manager(0).manager().store(app)->register_count() +
      s.manager(2).manager().store(app)->register_count();
  EXPECT_EQ(covered, static_cast<std::size_t>(cfg.users));
  // Both groups must actually own part of the population for this test to
  // exercise routing (deterministic under the pinned ring seed).
  EXPECT_GT(s.manager(0).manager().store(app)->register_count(), 0u);
  EXPECT_GT(s.manager(2).manager().store(app)->register_count(), 0u);

  // Every user checks allowed through the shard-routed controller path.
  std::vector<std::optional<bool>> verdicts(static_cast<std::size_t>(cfg.users));
  for (int i = 0; i < cfg.users; ++i) {
    s.check(i % cfg.app_hosts, s.user(i),
            [&verdicts, i](const AccessDecision& d) {
              verdicts[static_cast<std::size_t>(i)] = d.allowed;
            });
  }
  s.run_for(Duration::seconds(2));
  for (int i = 0; i < cfg.users; ++i) {
    ASSERT_TRUE(verdicts[static_cast<std::size_t>(i)].has_value())
        << "check " << i << " never decided";
    EXPECT_TRUE(*verdicts[static_cast<std::size_t>(i)]) << "user " << i;
  }

  // A revoke routed through the owner group is enforced once caches expire.
  const UserId victim = s.user(3);
  ASSERT_TRUE(s.revoke(victim));
  s.run_for(Duration::seconds(6));  // > Te: host caches of the old grant die
  std::optional<bool> after;
  s.check(0, victim, [&after](const AccessDecision& d) { after = d.allowed; });
  s.run_for(Duration::seconds(2));
  ASSERT_TRUE(after.has_value());
  EXPECT_FALSE(*after);

  const auto report = s.collector().report();
  EXPECT_GT(report.total, 0u);
  EXPECT_EQ(report.security_violations, 0u);
}

TEST(ShardIntegration, MisroutedTrafficIsRefusedNotAnswered) {
  ScenarioConfig cfg;
  cfg.managers = 4;
  cfg.shard_groups = 2;
  cfg.shard_count = 4;
  cfg.app_hosts = 1;
  cfg.users = 8;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.protocol.max_attempts = 2;
  cfg.protocol.query_timeout = Duration::millis(200);
  cfg.seed = 7002;
  Scenario s(cfg);
  const AppId app = s.app();
  const ShardMap& map = s.shard_map();

  const UserId u0 = s.user(0);
  ASSERT_TRUE(s.grant(u0));
  s.run_for(Duration::seconds(1));

  // A submit addressed directly at a non-owner module is refused and its
  // callback dropped — the mis-routed-write counter is the only trace.
  const std::uint32_t owner_g = map.group_of_shard(map.shard_of(app, u0));
  const std::uint32_t wrong_g = 1 - owner_g;
  const int wrong_idx = static_cast<int>(wrong_g) * 2;  // first member
  auto& wrong_mgr = s.manager(wrong_idx).manager();
  const std::uint64_t before = wrong_mgr.submits_refused_unowned();
  wrong_mgr.submit_update(app, acl::Op::kAdd, u0, acl::Right::kUse,
                          [](const proto::UpdateOutcome&) { FAIL(); });
  s.run_for(Duration::seconds(1));
  EXPECT_EQ(wrong_mgr.submits_refused_unowned(), before + 1);
  EXPECT_FALSE(store_entry(wrong_mgr, app, u0).has_value());

  // A host with a wrong (owner-swapped) map sends its queries to the
  // non-owner group; the managers refuse rather than answer from a slice
  // they do not hold, and the check falls through to the no-quorum policy.
  std::vector<std::uint32_t> swapped = map.owners();
  for (auto& o : swapped) o = 1 - o;
  ShardMap bad = ShardMap::assigned(map.groups(), std::move(swapped),
                                    /*epoch=*/2, map.ring_seed());
  s.host(0).controller().install_shard_map(app, bad);

  std::optional<AccessDecision> d;
  s.check(0, u0, [&d](const AccessDecision& dec) { d = dec; });
  s.run_for(Duration::seconds(3));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->path == DecisionPath::kDefaultAllow ||
              d->path == DecisionPath::kUnverifiableDeny)
      << "path=" << proto::to_cstring(d->path);
  std::uint64_t refused = 0;
  for (const HostId m : map.group(wrong_g)) {
    for (int i = 0; i < cfg.managers; ++i) {
      if (s.manager_ids()[static_cast<std::size_t>(i)] == m) {
        refused += s.manager(i).manager().queries_refused_unowned();
      }
    }
  }
  EXPECT_GE(refused, 1u);
}

// Satellite regression: recovery sync must transfer ONLY the shards the
// requester's group owns. The trap is a store with residual unowned entries
// (granted flat, sharded later): an unscoped responder would ship its whole
// store. The sync_entries_sent counter pins the scoped transfer size.
TEST(ShardIntegration, RecoverySyncScopedToRequestersShards) {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 1;
  cfg.users = 12;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.seed = 7003;
  Scenario s(cfg);
  const AppId app = s.app();

  // Flat phase: every store ends up with all 12 users.
  for (int i = 0; i < cfg.users; ++i) ASSERT_TRUE(s.grant(s.user(i), /*mgr=*/0));
  s.run_for(Duration::seconds(2));
  for (int i = 0; i < cfg.managers; ++i) {
    ASSERT_EQ(s.manager(i).manager().store(app)->register_count(), 12u);
  }

  // Shard it after the fact: three singleton groups. Residual unowned
  // entries deliberately stay in every store (only a rebalance commit drops
  // slices) — exactly the state an unscoped resync would leak.
  ShardMap map = ShardMap::ring(
      {{s.manager_ids()[0]}, {s.manager_ids()[1]}, {s.manager_ids()[2]}},
      /*shard_count=*/9, /*epoch=*/2);
  for (int i = 0; i < cfg.managers; ++i) {
    s.manager(i).manager().set_shard_map(app, map);
  }
  std::size_t owned_by_2 = 0;
  for (int i = 0; i < cfg.users; ++i) {
    if (map.owns(s.manager_ids()[2], app, s.user(i))) ++owned_by_2;
  }
  ASSERT_GT(owned_by_2, 0u);
  ASSERT_LT(owned_by_2, 12u);

  s.manager(2).crash();
  s.run_for(Duration::millis(200));
  s.manager(2).recover();
  s.run_for(Duration::seconds(3));

  auto& m2 = s.manager(2).manager();
  EXPECT_TRUE(m2.synced(app));
  // Each of the C=2 responders sent exactly the requester's slice, not its
  // full 12-entry store.
  const std::uint64_t sent = s.manager(0).manager().sync_entries_sent() +
                             s.manager(1).manager().sync_entries_sent();
  EXPECT_EQ(sent, 2u * owned_by_2);
  // The recovered manager holds its slice and nothing else; the responders'
  // residual entries were neither shipped nor merged.
  EXPECT_EQ(m2.store(app)->register_count(), owned_by_2);
  EXPECT_TRUE(store_scoped_to(m2, app, map, s.manager_ids()[2]));
  // Untouched peers keep their full stores (residuals stand until a real
  // rebalance commit drops them).
  EXPECT_EQ(s.manager(0).manager().store(app)->register_count(), 12u);
}

TEST(ShardIntegration, LiveRebalanceHoldsTeAcrossTheFlip) {
  ScenarioConfig cfg;
  cfg.managers = 6;
  cfg.shard_groups = 3;
  cfg.shard_count = 12;
  cfg.app_hosts = 2;
  cfg.users = 18;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::millis(500);
  cfg.seed = 7004;
  Scenario s(cfg);
  const AppId app = s.app();
  const ShardMap old_map = s.shard_map();
  ASSERT_EQ(old_map.groups().size(), 3u);

  // The next epoch: group 2 leaves. Ring monotonicity moves ONLY its shards.
  const ShardMap next = ShardMap::ring({old_map.group(0), old_map.group(1)},
                                       cfg.shard_count, /*epoch=*/2);
  for (std::uint32_t sh = 0; sh < cfg.shard_count; ++sh) {
    if (old_map.group_of_shard(sh) != 2) {
      EXPECT_EQ(next.group_of_shard(sh), old_map.group_of_shard(sh))
          << "shard " << sh << " moved although its group stayed";
    }
  }

  // Grant the first 16 users; pick a mover (owned by the leaving group) and
  // a stayer for the post-flip probes.
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(s.grant(s.user(i)));
  std::optional<UserId> mover, stayer;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t g =
        old_map.group_of_shard(old_map.shard_of(app, s.user(i)));
    if (g == 2 && !mover) mover = s.user(i);
    if (g != 2 && !stayer) stayer = s.user(i);
  }
  ASSERT_TRUE(mover.has_value()) << "no granted user on the leaving group";
  ASSERT_TRUE(stayer.has_value());

  auto& sched = s.scheduler();

  // Background checks across the whole run keep the collector's Te audit hot
  // through the handoff and the flip.
  for (int t = 0; t < 38; ++t) {
    sched.schedule_after(Duration::millis(500 + 250 * t), [&s, t] {
      s.check(t % 2, s.user((t * 7) % 16));
    });
  }

  // t=3s: every manager starts the handoff (only leaving-group members
  // actually stream slices; the rest just record the proposed epoch).
  sched.schedule_after(Duration::seconds(3), [&] {
    for (int i = 0; i < cfg.managers; ++i) {
      s.manager(i).manager().begin_shard_handoff(app, next);
    }
  });

  // t=3.2s: a revoke races the transfer. It lands on the OLD owner (group 2
  // still routes the key), and the re-snapshotting sender must carry it into
  // the slice the new owners activate.
  sched.schedule_after(Duration::millis(3200), [&] {
    ASSERT_TRUE(s.revoke(*mover));
  });

  // Poll the leaving group; the commit runs in the SAME scheduler event that
  // observed drained — atomic catch-up-then-flip.
  bool flipped = false;
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&, poll] {
    if (flipped) return;
    if (s.manager(4).manager().handoff_drained(app) &&
        s.manager(5).manager().handoff_drained(app)) {
      for (int i = 0; i < cfg.managers; ++i) {
        s.manager(i).manager().commit_shard_map(app, next);
      }
      s.publish_shard_map(next);
      flipped = true;
      return;
    }
    sched.schedule_after(Duration::millis(100), *poll);
  };
  sched.schedule_after(Duration::millis(3400), *poll);

  // Post-flip probes, all well past the revoke's Te window.
  std::optional<bool> mover_allowed, stayer_allowed, late_allowed;
  sched.schedule_after(Duration::millis(9500), [&] {
    s.check(0, *mover,
            [&](const AccessDecision& d) { mover_allowed = d.allowed; });
    s.check(1, *stayer,
            [&](const AccessDecision& d) { stayer_allowed = d.allowed; });
  });
  // A brand-new grant after the flip routes through the NEW map.
  sched.schedule_after(Duration::millis(8500), [&] {
    ASSERT_TRUE(s.grant(s.user(17)));
  });
  sched.schedule_after(Duration::millis(9800), [&] {
    s.check(0, s.user(17),
            [&](const AccessDecision& d) { late_allowed = d.allowed; });
  });

  s.run_for(Duration::millis(10500));

  ASSERT_TRUE(flipped) << "handoff never drained";
  // The departed group dropped every slice it handed off...
  EXPECT_EQ(s.manager(4).manager().store(app)->register_count(), 0u);
  EXPECT_EQ(s.manager(5).manager().store(app)->register_count(), 0u);
  // ...and the survivors activated everything they gained.
  for (int i = 0; i < 4; ++i) {
    auto& m = s.manager(i).manager();
    EXPECT_EQ(m.pending_shards(app), 0u) << "manager " << i;
    EXPECT_TRUE(store_scoped_to(m, app, next, s.manager_ids()[i]))
        << "manager " << i;
  }
  // The racing revoke travelled with the slice: the new owner group holds
  // the mover as REVOKED, and checks deny it after the flip.
  const std::uint32_t new_g = next.group_of_shard(next.shard_of(app, *mover));
  const int new_owner_idx = static_cast<int>(new_g) * 2;
  const auto entry =
      store_entry(s.manager(new_owner_idx).manager(), app, *mover);
  ASSERT_TRUE(entry.has_value()) << "mover's entry did not transfer";
  EXPECT_EQ(entry->op, acl::Op::kRevoke);
  ASSERT_TRUE(mover_allowed.has_value());
  EXPECT_FALSE(*mover_allowed);
  ASSERT_TRUE(stayer_allowed.has_value());
  EXPECT_TRUE(*stayer_allowed);
  ASSERT_TRUE(late_allowed.has_value());
  EXPECT_TRUE(*late_allowed);

  const auto report = s.collector().report();
  EXPECT_GT(report.total, 0u);
  EXPECT_EQ(report.security_violations, 0u);
}

// Regression (high): a complete handoff series left over from an EARLIER
// rebalance must not count toward a later acquisition's quorum. The shard
// bounces A -> B -> C -> B; at the final hop B commits BEFORE C streams, so
// the only "evidence" B holds would be the stale epoch-3 series from A.
// Counting it would activate the shard over an empty store — and around the
// revoke C is carrying — voiding the quorum-intersection guarantee.
TEST(ShardIntegration, ShardBounceStaleSeriesIsNotQuorumEvidence) {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 1;
  cfg.users = 8;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 1;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.protocol.sync_retransmit = Duration::millis(500);
  cfg.seed = 7005;
  Scenario s(cfg);
  const AppId app = s.app();
  const std::vector<std::vector<HostId>> groups{
      {s.manager_ids()[0]}, {s.manager_ids()[1]}, {s.manager_ids()[2]}};
  auto mgr = [&](int i) -> proto::ManagerModule& {
    return s.manager(i).manager();
  };
  auto begin_all = [&](const ShardMap& m) {
    for (int i = 0; i < cfg.managers; ++i) mgr(i).begin_shard_handoff(app, m);
  };
  auto commit_all = [&](const ShardMap& m) {
    for (int i = 0; i < cfg.managers; ++i) mgr(i).commit_shard_map(app, m);
  };

  for (int i = 0; i < cfg.users; ++i) ASSERT_TRUE(s.grant(s.user(i), 0));
  s.run_for(Duration::seconds(2));

  // Epoch 2: the whole (1-shard) key space is A's.
  const ShardMap e2 = ShardMap::assigned(groups, {0}, /*epoch=*/2);
  for (int i = 0; i < cfg.managers; ++i) mgr(i).set_shard_map(app, e2);

  // Epoch 3: A hands the shard to B (stream, then commit).
  const ShardMap e3 = ShardMap::assigned(groups, {1}, /*epoch=*/3);
  begin_all(e3);
  s.run_for(Duration::seconds(2));
  commit_all(e3);
  s.run_for(Duration::seconds(1));
  ASSERT_EQ(mgr(1).pending_shards(app), 0u);
  ASSERT_EQ(mgr(1).store(app)->register_count(), 8u);
  // Activation consumed A's series; nothing may linger as future evidence.
  EXPECT_EQ(mgr(1).tracked_handoff_series(app), 0u);
  EXPECT_EQ(mgr(1).staged_shards(app), 0u);

  // Epoch 4: B hands it to C; B sheds the slice.
  const ShardMap e4 = ShardMap::assigned(groups, {2}, /*epoch=*/4);
  begin_all(e4);
  s.run_for(Duration::seconds(2));
  commit_all(e4);
  s.run_for(Duration::seconds(1));
  ASSERT_EQ(mgr(2).pending_shards(app), 0u);
  ASSERT_EQ(mgr(1).store(app)->register_count(), 0u);

  // C revokes a user while it owns the shard; the revoke must ride the
  // final handoff back to B.
  const UserId victim = s.user(2);
  ASSERT_TRUE(s.revoke(victim, 2));
  s.run_for(Duration::seconds(1));

  // Epoch 5: the shard returns to B — committed BEFORE C begins streaming
  // (a scripted commit racing the transfer). B must hold the shard pending:
  // its only complete series ever was A's, from epoch 3.
  const ShardMap e5 = ShardMap::assigned(groups, {1}, /*epoch=*/5);
  mgr(1).commit_shard_map(app, e5);
  EXPECT_EQ(mgr(1).pending_shards(app), 1u)
      << "a stale epoch-3 series satisfied the epoch-5 acquisition";
  EXPECT_EQ(mgr(1).store(app)->register_count(), 0u);

  // C now streams the real transfer; B activates on the CURRENT series.
  mgr(2).begin_shard_handoff(app, e5);
  s.run_for(Duration::seconds(2));
  mgr(2).commit_shard_map(app, e5);
  mgr(0).commit_shard_map(app, e5);
  s.run_for(Duration::seconds(1));
  EXPECT_EQ(mgr(1).pending_shards(app), 0u);
  EXPECT_EQ(mgr(1).store(app)->register_count(), 8u);
  const auto entry = store_entry(mgr(1), app, victim);
  ASSERT_TRUE(entry.has_value()) << "the revoke did not ride the handoff";
  EXPECT_EQ(entry->op, acl::Op::kRevoke);
  EXPECT_EQ(mgr(1).tracked_handoff_series(app), 0u);
  EXPECT_EQ(mgr(1).staged_shards(app), 0u);
}

// Regression (medium): a handoff series that straggles in after the shard
// already activated must be acked (so the sender retires) but neither
// tracked nor staged — recreated staging has no drain path and would leak
// for the process lifetime. Old group {A,B} streams to singleton {C} with a
// transfer quorum of 1; B's stream is held back by a one-way cut until C
// has activated on A's series alone.
TEST(ShardIntegration, StragglerSeriesAfterActivationLeavesNoResidue) {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 1;
  cfg.users = 8;
  cfg.constant_latency = true;
  cfg.partitions = ScenarioConfig::Partitions::kScripted;
  cfg.protocol.check_quorum = 1;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.protocol.sync_retransmit = Duration::millis(500);
  cfg.seed = 7006;
  Scenario s(cfg);
  const AppId app = s.app();
  const HostId b = s.manager_ids()[1], c = s.manager_ids()[2];
  const std::vector<std::vector<HostId>> groups{
      {s.manager_ids()[0], b}, {c}};
  auto mgr = [&](int i) -> proto::ManagerModule& {
    return s.manager(i).manager();
  };

  for (int i = 0; i < cfg.users; ++i) ASSERT_TRUE(s.grant(s.user(i), 0));
  s.run_for(Duration::seconds(2));

  const ShardMap e2 = ShardMap::assigned(groups, {0}, /*epoch=*/2);
  for (int i = 0; i < cfg.managers; ++i) mgr(i).set_shard_map(app, e2);

  // B's stream toward C is cut (one-way: C's acks still flow) before the
  // rebalance starts, so C activates on A's complete series alone.
  s.directional().cut_one_way(b, c);
  const ShardMap e3 = ShardMap::assigned(groups, {1}, /*epoch=*/3);
  for (int i = 0; i < cfg.managers; ++i) mgr(i).begin_shard_handoff(app, e3);
  s.run_for(Duration::seconds(2));
  for (int i = 0; i < cfg.managers; ++i) mgr(i).commit_shard_map(app, e3);
  s.run_for(Duration::seconds(1));
  ASSERT_EQ(mgr(2).pending_shards(app), 0u) << "C did not activate on A";
  ASSERT_EQ(mgr(2).store(app)->register_count(), 8u);

  // Heal: B's frozen post-commit series now arrives at an ACTIVE shard.
  s.directional().heal_one_way(b, c);
  s.run_for(Duration::seconds(3));

  // The straggler was acked away: B retired its handoff, and C tracked and
  // staged nothing.
  EXPECT_TRUE(mgr(1).handoff_drained(app)) << "B never retired its series";
  EXPECT_EQ(mgr(2).staged_shards(app), 0u) << "straggler recreated staging";
  EXPECT_EQ(mgr(2).tracked_handoff_series(app), 0u);
  EXPECT_EQ(mgr(2).pending_shards(app), 0u);
  EXPECT_EQ(mgr(2).store(app)->register_count(), 8u);
}

// Regression (medium): a ShardMapAnnounce whose shard_count disagrees with
// the installed map must be dropped, not funnelled into the asserting
// commit path — one misconfigured coordinator must not abort the fleet.
TEST(ShardIntegration, MismatchedShardCountAnnounceIsDropped) {
  ScenarioConfig cfg;
  cfg.managers = 2;
  cfg.app_hosts = 1;
  cfg.users = 4;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 1;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.seed = 7007;
  Scenario s(cfg);
  const AppId app = s.app();
  const HostId a = s.manager_ids()[0], b = s.manager_ids()[1];
  const std::vector<std::vector<HostId>> groups{{a}, {b}};

  const ShardMap e2 = ShardMap::assigned(groups, {0, 0}, /*epoch=*/2);
  s.manager(0).manager().set_shard_map(app, e2);
  s.manager(1).manager().set_shard_map(app, e2);

  // A (mis)configured coordinator announces a 3-shard map into a 2-shard
  // deployment. The receiver must survive and keep its map.
  const ShardMap bad = ShardMap::assigned(groups, {0, 0, 0}, /*epoch=*/3);
  s.manager(0).manager().set_shard_map(app, bad);
  s.manager(0).manager().announce_shard_map(app, {b});
  s.run_for(Duration::seconds(1));
  ASSERT_NE(s.manager(1).manager().shard_map(app), nullptr);
  EXPECT_EQ(s.manager(1).manager().shard_map(app)->epoch(), 2u);
  EXPECT_EQ(s.manager(1).manager().shard_map(app)->shard_count(), 2u);

  // A well-formed newer announce still commits (the drop is a filter, not a
  // freeze): epoch advances once the shard_count agrees.
  const ShardMap e4 = ShardMap::assigned(groups, {0, 0}, /*epoch=*/4);
  s.manager(0).manager().set_shard_map(app, e4);
  s.manager(0).manager().announce_shard_map(app, {b});
  s.run_for(Duration::seconds(1));
  EXPECT_EQ(s.manager(1).manager().shard_map(app)->epoch(), 4u);
}

// Regression (low): a gaining manager that crashes after acking a sender
// that then retired must not refuse the shard forever. Old group {C,D}
// streams to {A,B} with a transfer quorum of 2; A sees only C's series
// (D's stream is cut), everyone commits, A crashes — erasing the ack C
// retired against. On recovery, D alone can never complete the quorum; the
// completed recovery sync from A's group must adopt the shard instead.
TEST(ShardIntegration, CrashedGainerAdoptsPendingShardFromRecoverySync) {
  ScenarioConfig cfg;
  cfg.managers = 4;
  cfg.app_hosts = 1;
  cfg.users = 8;
  cfg.constant_latency = true;
  cfg.partitions = ScenarioConfig::Partitions::kScripted;
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(5);
  cfg.protocol.sync_retransmit = Duration::millis(500);
  cfg.seed = 7008;
  Scenario s(cfg);
  const AppId app = s.app();
  const HostId a = s.manager_ids()[0], d = s.manager_ids()[3];
  const std::vector<std::vector<HostId>> groups{
      {a, s.manager_ids()[1]}, {s.manager_ids()[2], d}};
  auto mgr = [&](int i) -> proto::ManagerModule& {
    return s.manager(i).manager();
  };

  for (int i = 0; i < cfg.users; ++i) ASSERT_TRUE(s.grant(s.user(i), 0));
  s.run_for(Duration::seconds(2));

  // Epoch 2: group {C,D} owns the single shard; {A,B} shed their residuals
  // through a real commit so the final store content is attributable.
  const ShardMap e2 = ShardMap::assigned(groups, {1}, /*epoch=*/2);
  for (int i = 0; i < cfg.managers; ++i) mgr(i).commit_shard_map(app, e2);
  ASSERT_EQ(mgr(0).store(app)->register_count(), 0u);

  // Epoch 3: the shard moves to {A,B}. D's stream to A is cut, so A ends
  // the commit one series short of its quorum of 2.
  s.directional().cut_one_way(d, a);
  const ShardMap e3 = ShardMap::assigned(groups, {0}, /*epoch=*/3);
  for (int i = 0; i < cfg.managers; ++i) mgr(i).begin_shard_handoff(app, e3);
  s.run_for(Duration::seconds(2));
  for (int i = 0; i < cfg.managers; ++i) mgr(i).commit_shard_map(app, e3);
  s.run_for(Duration::seconds(1));
  ASSERT_EQ(mgr(1).pending_shards(app), 0u) << "B did not activate";
  ASSERT_EQ(mgr(0).pending_shards(app), 1u) << "A activated short of quorum";
  // C saw acks from both destinations and retired; it will never re-stream.
  ASSERT_TRUE(mgr(2).handoff_drained(app));

  // A crashes (losing the ack C retired against) and recovers behind a
  // healed link. D re-streams, but one eligible series can never make the
  // quorum of 2 — only the recovery sync can unstick the shard.
  s.manager(0).crash();
  s.run_for(Duration::millis(200));
  s.directional().heal_one_way(d, a);
  s.manager(0).recover();
  s.run_for(Duration::seconds(5));

  EXPECT_TRUE(mgr(0).synced(app));
  EXPECT_EQ(mgr(0).pending_shards(app), 0u)
      << "A still refuses the shard its group answers for";
  EXPECT_EQ(mgr(0).store(app)->register_count(), 8u);
  EXPECT_EQ(mgr(0).staged_shards(app), 0u);
  EXPECT_EQ(mgr(0).tracked_handoff_series(app), 0u);
  // The straggling sender retired against the adopted shard's acks.
  EXPECT_TRUE(mgr(3).handoff_drained(app));
}

}  // namespace
}  // namespace wan
