// Unit + property tests for rights, versions, the authoritative store
// (last-writer-wins convergence), and the host-side cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "acl/cache.hpp"
#include "acl/store.hpp"
#include "util/rng.hpp"

namespace wan::acl {
namespace {

using clk::LocalTime;
using sim::Duration;

TEST(RightSet, AddRemoveHas) {
  RightSet s;
  EXPECT_TRUE(s.empty());
  s.add(Right::kUse);
  EXPECT_TRUE(s.has(Right::kUse));
  EXPECT_FALSE(s.has(Right::kManage));
  s.add(Right::kManage);
  EXPECT_EQ(s, RightSet::both());
  s.remove(Right::kUse);
  EXPECT_FALSE(s.has(Right::kUse));
  EXPECT_TRUE(s.has(Right::kManage));
}

TEST(RightSet, ToString) {
  EXPECT_EQ(RightSet{}.to_string(), "{}");
  EXPECT_EQ(RightSet(Right::kUse).to_string(), "{use}");
  EXPECT_EQ(RightSet::both().to_string(), "{use,manage}");
}

TEST(Version, TotalOrder) {
  const Version a{1, HostId(1)};
  const Version b{1, HostId(2)};
  const Version c{2, HostId(1)};
  EXPECT_LT(a, b);  // tie on counter -> manager id breaks
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_TRUE(Version{}.initial());
  EXPECT_LT(Version{}, a);
}

TEST(Version, NextDominates) {
  const Version v{7, HostId(3)};
  const Version n = v.next(HostId(1));
  EXPECT_GT(n, v);
  EXPECT_EQ(n.origin, HostId(1));
}

TEST(AclStore, ApplyAndCheck) {
  AclStore store;
  EXPECT_FALSE(store.check(UserId(1), Right::kUse));
  store.apply({UserId(1), Right::kUse, Op::kAdd, {1, HostId(0)}});
  EXPECT_TRUE(store.check(UserId(1), Right::kUse));
  EXPECT_FALSE(store.check(UserId(1), Right::kManage));
  EXPECT_FALSE(store.check(UserId(2), Right::kUse));
}

TEST(AclStore, StaleUpdateIgnored) {
  AclStore store;
  EXPECT_TRUE(store.apply({UserId(1), Right::kUse, Op::kAdd, {5, HostId(0)}}));
  EXPECT_FALSE(store.apply({UserId(1), Right::kUse, Op::kRevoke, {3, HostId(0)}}));
  EXPECT_TRUE(store.check(UserId(1), Right::kUse));
}

TEST(AclStore, EqualVersionIgnored) {
  AclStore store;
  const AclUpdate u{UserId(1), Right::kUse, Op::kAdd, {5, HostId(0)}};
  EXPECT_TRUE(store.apply(u));
  EXPECT_FALSE(store.apply(u));  // idempotent
}

TEST(AclStore, RightsAreIndependentRegisters) {
  AclStore store;
  store.apply({UserId(1), Right::kUse, Op::kAdd, {1, HostId(0)}});
  store.apply({UserId(1), Right::kManage, Op::kAdd, {2, HostId(0)}});
  store.apply({UserId(1), Right::kUse, Op::kRevoke, {3, HostId(0)}});
  EXPECT_FALSE(store.check(UserId(1), Right::kUse));
  EXPECT_TRUE(store.check(UserId(1), Right::kManage));
}

TEST(AclStore, MaxVersionTracksEverything) {
  AclStore store;
  store.apply({UserId(1), Right::kUse, Op::kAdd, {9, HostId(2)}});
  store.apply({UserId(2), Right::kUse, Op::kAdd, {4, HostId(1)}});
  EXPECT_EQ(store.max_version().counter, 9u);
  const Version next = store.max_version().next(HostId(5));
  EXPECT_GT(next, store.max_version());
}

TEST(AclStore, SnapshotRoundTrip) {
  AclStore a;
  a.apply({UserId(1), Right::kUse, Op::kAdd, {1, HostId(0)}});
  a.apply({UserId(2), Right::kManage, Op::kAdd, {2, HostId(0)}});
  a.apply({UserId(1), Right::kUse, Op::kRevoke, {3, HostId(1)}});
  AclStore b;
  EXPECT_EQ(b.merge(a.snapshot()), 2u);  // 2 registers written
  EXPECT_FALSE(b.check(UserId(1), Right::kUse));
  EXPECT_TRUE(b.check(UserId(2), Right::kManage));
  EXPECT_EQ(b.snapshot(), a.snapshot());
}

TEST(AclStore, GrantedUsersSorted) {
  AclStore store;
  store.apply({UserId(3), Right::kUse, Op::kAdd, {1, HostId(0)}});
  store.apply({UserId(1), Right::kUse, Op::kAdd, {2, HostId(0)}});
  store.apply({UserId(2), Right::kUse, Op::kAdd, {3, HostId(0)}});
  store.apply({UserId(2), Right::kUse, Op::kRevoke, {4, HostId(0)}});
  EXPECT_EQ(store.granted_users(), (std::vector<UserId>{UserId(1), UserId(3)}));
}

TEST(AclStore, StateReportsVersion) {
  AclStore store;
  EXPECT_FALSE(store.state(UserId(1), Right::kUse).has_value());
  store.apply({UserId(1), Right::kUse, Op::kAdd, {7, HostId(2)}});
  const auto st = store.state(UserId(1), Right::kUse);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->granted);
  EXPECT_EQ(st->version.counter, 7u);
}

// Convergence property: applying any permutation of the same update set
// yields identical stores (the LWW-register CRDT property the recovery sync
// and anti-entropy baselines rely on).
class StoreConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreConvergence, OrderIndependent) {
  Rng rng(GetParam());
  std::vector<AclUpdate> updates;
  for (int i = 0; i < 60; ++i) {
    // Unique counters: two distinct updates never carry the same version for
    // one register (matching how managers actually issue versions).
    updates.push_back(AclUpdate{
        UserId(static_cast<std::uint32_t>(rng.next_below(6))),
        rng.next_bool(0.5) ? Right::kUse : Right::kManage,
        rng.next_bool(0.5) ? Op::kAdd : Op::kRevoke,
        Version{static_cast<std::uint64_t>(i) + 1,
                HostId(static_cast<std::uint32_t>(rng.next_below(3)))}});
  }
  AclStore reference;
  reference.merge(updates);

  for (int perm = 0; perm < 10; ++perm) {
    // Fisher-Yates with the test RNG.
    auto shuffled = updates;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    AclStore store;
    store.merge(shuffled);
    EXPECT_EQ(store.snapshot(), reference.snapshot());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreConvergence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------- AclCache

TEST(AclCache, MissThenInsertThenHit) {
  AclCache cache;
  const LocalTime t0 = LocalTime::from_nanos(0);
  EXPECT_FALSE(cache.lookup(UserId(1), t0).has_value());
  cache.insert(UserId(1), RightSet(Right::kUse), t0 + Duration::seconds(10),
               Version{1, HostId(0)}, t0);
  const auto hit = cache.lookup(UserId(1), t0 + Duration::seconds(5));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->rights.has(Right::kUse));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(AclCache, ExpiredEntryRemovedOnLookup) {
  AclCache cache;
  const LocalTime t0 = LocalTime::from_nanos(0);
  cache.insert(UserId(1), RightSet(Right::kUse), t0 + Duration::seconds(10),
               Version{1, HostId(0)}, t0);
  EXPECT_FALSE(cache.lookup(UserId(1), t0 + Duration::seconds(10)).has_value());
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AclCache, ExpiryBoundaryIsExclusive) {
  AclCache cache;
  const LocalTime t0 = LocalTime::from_nanos(0);
  const LocalTime limit = t0 + Duration::seconds(10);
  cache.insert(UserId(1), RightSet(Right::kUse), limit, Version{1, HostId(0)}, t0);
  // One nanosecond before the limit: valid.
  EXPECT_TRUE(cache.lookup(UserId(1), limit - Duration::nanos(1)).has_value());
  // At the limit: expired.
  EXPECT_FALSE(cache.lookup(UserId(1), limit).has_value());
}

TEST(AclCache, RevokeFlushIsNoOpWhenAbsent) {
  AclCache cache;
  cache.remove_on_revoke(UserId(1));  // "equivalent to a no-op" (Fig. 2)
  EXPECT_EQ(cache.stats().revoke_flushes, 0u);
  const LocalTime t0 = LocalTime::from_nanos(0);
  cache.insert(UserId(1), RightSet(Right::kUse), t0 + Duration::seconds(10),
               Version{1, HostId(0)}, t0);
  cache.remove_on_revoke(UserId(1));
  EXPECT_EQ(cache.stats().revoke_flushes, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AclCache, InsertOverwrites) {
  AclCache cache;
  const LocalTime t0 = LocalTime::from_nanos(0);
  cache.insert(UserId(1), RightSet(Right::kUse), t0 + Duration::seconds(1),
               Version{1, HostId(0)}, t0);
  cache.insert(UserId(1), RightSet::both(), t0 + Duration::seconds(20),
               Version{2, HostId(0)}, t0);
  const auto e = cache.lookup(UserId(1), t0 + Duration::seconds(10));
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->rights.has(Right::kManage));
  EXPECT_EQ(e->version.counter, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AclCache, SweepRemovesExpiredAndIdle) {
  AclCache cache;
  const LocalTime t0 = LocalTime::from_nanos(0);
  // Expired entry.
  cache.insert(UserId(1), RightSet(Right::kUse), t0 + Duration::seconds(5),
               Version{1, HostId(0)}, t0);
  // Live but idle entry.
  cache.insert(UserId(2), RightSet(Right::kUse), t0 + Duration::hours(2),
               Version{1, HostId(0)}, t0);
  // Live and recently used entry.
  cache.insert(UserId(3), RightSet(Right::kUse), t0 + Duration::hours(2),
               Version{1, HostId(0)}, t0);
  cache.lookup(UserId(3), t0 + Duration::minutes(29));

  const std::size_t removed =
      cache.sweep(t0 + Duration::minutes(30), Duration::minutes(30));
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(cache.cached_users(), (std::vector<UserId>{UserId(3)}));
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_EQ(cache.stats().idle_evictions, 1u);
}

TEST(AclCache, ClearDropsEverything) {
  AclCache cache;
  const LocalTime t0 = LocalTime::from_nanos(0);
  for (std::uint32_t i = 0; i < 10; ++i) {
    cache.insert(UserId(i), RightSet(Right::kUse), t0 + Duration::hours(1),
                 Version{1, HostId(0)}, t0);
  }
  EXPECT_EQ(cache.size(), 10u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AclCache, PeekDoesNotTouchStats) {
  AclCache cache;
  const LocalTime t0 = LocalTime::from_nanos(0);
  cache.insert(UserId(1), RightSet(Right::kUse), t0 + Duration::seconds(1),
               Version{1, HostId(0)}, t0);
  EXPECT_TRUE(cache.peek(UserId(1)).has_value());
  EXPECT_FALSE(cache.peek(UserId(2)).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

}  // namespace
}  // namespace wan::acl
