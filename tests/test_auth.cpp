// Unit tests for the toy signature scheme and the replay-suppressing
// authenticator.
#include <gtest/gtest.h>

#include "auth/authenticator.hpp"
#include "auth/credentials.hpp"
#include "util/rng.hpp"

namespace wan::auth {
namespace {

TEST(Credentials, KeypairDerivesPublicFromSecret) {
  Rng rng(1);
  const KeyPair kp = generate_keypair(rng);
  EXPECT_EQ(kp.public_key, derive_public_key(kp.secret));
  EXPECT_NE(kp.public_key, kp.secret);
}

TEST(Credentials, DistinctKeypairs) {
  Rng rng(2);
  const KeyPair a = generate_keypair(rng);
  const KeyPair b = generate_keypair(rng);
  EXPECT_NE(a.secret, b.secret);
  EXPECT_NE(a.public_key, b.public_key);
}

TEST(Credentials, SignVerifyRoundTrip) {
  Rng rng(3);
  const KeyPair kp = generate_keypair(rng);
  KeyRegistry reg;
  reg.register_user(UserId(1), kp.public_key);
  const Signature sig = sign(UserId(1), "hello", kp.secret);
  EXPECT_TRUE(reg.verify(UserId(1), "hello", sig));
}

TEST(Credentials, TamperedPayloadFails) {
  Rng rng(4);
  const KeyPair kp = generate_keypair(rng);
  KeyRegistry reg;
  reg.register_user(UserId(1), kp.public_key);
  const Signature sig = sign(UserId(1), "hello", kp.secret);
  EXPECT_FALSE(reg.verify(UserId(1), "hellO", sig));
}

TEST(Credentials, WrongUserFails) {
  Rng rng(5);
  const KeyPair kp = generate_keypair(rng);
  KeyRegistry reg;
  reg.register_user(UserId(1), kp.public_key);
  reg.register_user(UserId(2), kp.public_key);
  const Signature sig = sign(UserId(1), "hello", kp.secret);
  EXPECT_FALSE(reg.verify(UserId(2), "hello", sig));
}

TEST(Credentials, WrongKeyFails) {
  Rng rng(6);
  const KeyPair kp = generate_keypair(rng);
  const KeyPair other = generate_keypair(rng);
  KeyRegistry reg;
  reg.register_user(UserId(1), kp.public_key);
  const Signature sig = sign(UserId(1), "hello", other.secret);
  EXPECT_FALSE(reg.verify(UserId(1), "hello", sig));
}

TEST(Credentials, UnknownUserFailsVerify) {
  KeyRegistry reg;
  EXPECT_FALSE(reg.verify(UserId(9), "x", Signature{123}));
  EXPECT_FALSE(reg.lookup(UserId(9)).has_value());
}

TEST(Credentials, ReRegistrationModelsRekeying) {
  Rng rng(7);
  const KeyPair old_kp = generate_keypair(rng);
  const KeyPair new_kp = generate_keypair(rng);
  KeyRegistry reg;
  reg.register_user(UserId(1), old_kp.public_key);
  const Signature old_sig = sign(UserId(1), "m", old_kp.secret);
  EXPECT_TRUE(reg.verify(UserId(1), "m", old_sig));
  reg.register_user(UserId(1), new_kp.public_key);
  EXPECT_FALSE(reg.verify(UserId(1), "m", old_sig));
  EXPECT_TRUE(reg.verify(UserId(1), "m", sign(UserId(1), "m", new_kp.secret)));
}

struct AuthenticatorFixture : ::testing::Test {
  Rng rng{10};
  KeyPair kp = generate_keypair(rng);
  KeyRegistry reg;
  UserId user{1};

  AuthenticatorFixture() { reg.register_user(user, kp.public_key); }

  Signature make_sig(std::string_view payload, std::uint64_t nonce) {
    return sign(user, Authenticator::signed_bytes(payload, nonce), kp.secret);
  }
};

TEST_F(AuthenticatorFixture, AcceptsValidMessage) {
  Authenticator auth(reg);
  EXPECT_EQ(auth.authenticate(user, "msg", 1, make_sig("msg", 1)),
            AuthResult::kOk);
}

TEST_F(AuthenticatorFixture, RejectsUnknownUser) {
  Authenticator auth(reg);
  EXPECT_EQ(auth.authenticate(UserId(99), "msg", 1, make_sig("msg", 1)),
            AuthResult::kUnknownUser);
}

TEST_F(AuthenticatorFixture, RejectsBadSignature) {
  Authenticator auth(reg);
  EXPECT_EQ(auth.authenticate(user, "msg", 1, Signature{0xdead}),
            AuthResult::kBadSignature);
}

TEST_F(AuthenticatorFixture, RejectsNonceReplay) {
  Authenticator auth(reg);
  EXPECT_EQ(auth.authenticate(user, "msg", 5, make_sig("msg", 5)),
            AuthResult::kOk);
  EXPECT_EQ(auth.authenticate(user, "msg", 5, make_sig("msg", 5)),
            AuthResult::kReplayed);
  EXPECT_EQ(auth.authenticate(user, "msg", 4, make_sig("msg", 4)),
            AuthResult::kReplayed);
  EXPECT_EQ(auth.authenticate(user, "msg", 6, make_sig("msg", 6)),
            AuthResult::kOk);
}

TEST_F(AuthenticatorFixture, NonceBoundToSignature) {
  Authenticator auth(reg);
  // A valid signature for nonce 1 presented with nonce 2 must fail.
  EXPECT_EQ(auth.authenticate(user, "msg", 2, make_sig("msg", 1)),
            AuthResult::kBadSignature);
}

TEST_F(AuthenticatorFixture, ResetClearsReplayFloor) {
  Authenticator auth(reg);
  EXPECT_EQ(auth.authenticate(user, "msg", 5, make_sig("msg", 5)),
            AuthResult::kOk);
  auth.reset();
  EXPECT_EQ(auth.authenticate(user, "msg", 5, make_sig("msg", 5)),
            AuthResult::kOk);
}

TEST(AuthResultNames, AllDistinct) {
  EXPECT_STREQ(to_string(AuthResult::kOk), "ok");
  EXPECT_STREQ(to_string(AuthResult::kReplayed), "replayed");
  EXPECT_STREQ(to_string(AuthResult::kBadSignature), "bad-signature");
  EXPECT_STREQ(to_string(AuthResult::kUnknownUser), "unknown-user");
}

}  // namespace
}  // namespace wan::auth
