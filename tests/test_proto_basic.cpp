// End-to-end protocol tests on a healthy network: grant/check/revoke flows,
// caching, coalescing, authentication, grant tables, deny reasons.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "workload/scenario.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using proto::DecisionPath;
using proto::DenyReason;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig healthy_config() {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 4;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::minutes(5);
  cfg.protocol.clock_bound_b = 1.0;
  cfg.seed = 42;
  return cfg;
}

// Runs a check and returns the decision once made (driving the scheduler a
// short, fixed window — healthy-network decisions land within milliseconds).
AccessDecision run_check(Scenario& s, int host, UserId user) {
  std::optional<AccessDecision> result;
  s.check(host, user, [&](const AccessDecision& d) { result = d; });
  s.run_for(Duration::seconds(2));
  EXPECT_TRUE(result.has_value());
  return result.value_or(AccessDecision{});
}

TEST(ProtoBasic, UnknownUserDeniedByQuorum) {
  Scenario s(healthy_config());
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kQuorumDenied);
  EXPECT_EQ(d.reason, DenyReason::kNotAuthorized);
  EXPECT_EQ(d.attempts, 1);
}

TEST(ProtoBasic, GrantedUserAllowed) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kQuorumGranted);
  EXPECT_FALSE(d.basis_version.initial());
}

TEST(ProtoBasic, SecondCheckHitsCache) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0));
  const auto d2 = run_check(s, 0, s.user(0));
  EXPECT_TRUE(d2.allowed);
  EXPECT_EQ(d2.path, DecisionPath::kCacheHit);
  EXPECT_EQ(d2.latency().count_nanos(), 0);  // purely local
}

TEST(ProtoBasic, CachesArePerHost) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0));
  // Host 1 has no cached entry: first check goes to the managers.
  const auto d = run_check(s, 1, s.user(0));
  EXPECT_EQ(d.path, DecisionPath::kQuorumGranted);
}

TEST(ProtoBasic, RevokeFlushesCachesAndDenies) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0));  // populates cache + grant table
  ASSERT_EQ(s.host(0).controller().cache(s.app())->size(), 1u);

  s.revoke(s.user(0));
  s.run_for(Duration::seconds(5));  // revoke disseminates + forwards
  // RevokeNotify flushed the cache without waiting for expiry.
  EXPECT_EQ(s.host(0).controller().cache(s.app())->size(), 0u);
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kQuorumDenied);
}

TEST(ProtoBasic, ReGrantAfterRevokeWorks) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(5));
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  EXPECT_TRUE(run_check(s, 0, s.user(0)).allowed);
}

TEST(ProtoBasic, CacheExpiresAfterTe) {
  auto cfg = healthy_config();
  cfg.protocol.Te = Duration::seconds(60);
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0));
  // Within te the entry is live...
  s.run_for(Duration::seconds(30));
  EXPECT_EQ(run_check(s, 0, s.user(0)).path, DecisionPath::kCacheHit);
  // ...after te it must be re-verified with the managers.
  s.run_for(Duration::seconds(61));
  EXPECT_EQ(run_check(s, 0, s.user(0)).path, DecisionPath::kQuorumGranted);
}

TEST(ProtoBasic, ConcurrentChecksCoalesceIntoOneSession) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.network().reset_stats();

  int decisions = 0;
  bool all_allowed = true;
  for (int i = 0; i < 5; ++i) {
    s.check(0, s.user(0), [&](const AccessDecision& d) {
      ++decisions;
      all_allowed = all_allowed && d.allowed;
    });
  }
  s.run_for(Duration::seconds(10));
  EXPECT_EQ(decisions, 5);
  EXPECT_TRUE(all_allowed);
  // One session: exactly M = 3 QueryRequests despite 5 concurrent checks.
  EXPECT_EQ(s.network().stats().sent_by_type().at("QueryRequest"), 3u);
}

TEST(ProtoBasic, ManagerGrantTableTracksCachingHosts) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0));
  run_check(s, 1, s.user(0));
  // Every manager that answered recorded the hosts it granted to.
  int tables_with_hosts = 0;
  for (int m = 0; m < s.manager_count(); ++m) {
    const auto hosts = s.manager(m).manager().granted_hosts(s.app(), s.user(0));
    tables_with_hosts += hosts.empty() ? 0 : 1;
  }
  EXPECT_GE(tables_with_hosts, 1);
}

TEST(ProtoBasic, RevokeAckPrunesGrantTable) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(10));
  for (int m = 0; m < s.manager_count(); ++m) {
    EXPECT_TRUE(s.manager(m).manager().granted_hosts(s.app(), s.user(0)).empty());
  }
}

TEST(ProtoBasic, UpdateQuorumCallbackFires) {
  Scenario s(healthy_config());
  bool fired = false;
  s.grant(s.user(0), 0, [&] { fired = true; });
  s.run_for(Duration::seconds(5));
  EXPECT_TRUE(fired);
  // All three manager stores converged.
  for (int m = 0; m < s.manager_count(); ++m) {
    EXPECT_TRUE(s.manager(m).manager().store(s.app())->check(s.user(0),
                                                             acl::Right::kUse));
  }
}

TEST(ProtoBasic, ManageRightDoesNotImplyUse) {
  Scenario s(healthy_config());
  s.manager(0).manager().submit_update(s.app(), acl::Op::kAdd, s.user(1),
                                       acl::Right::kManage);
  s.run_for(Duration::seconds(5));
  const auto d = run_check(s, 0, s.user(1));
  EXPECT_FALSE(d.allowed);
}

TEST(ProtoBasic, EndToEndInvokeThroughUserAgent) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));

  std::optional<proto::InvokeResult> result;
  s.agent(0).invoke(s.app(), {s.host_ids()[0]}, "hello",
                    [&](const proto::InvokeResult& r) { result = r; });
  s.run_for(Duration::seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(result->result, "ok:hello");
  EXPECT_GT(result->latency.count_nanos(), 0);
}

TEST(ProtoBasic, UnauthorizedInvokeRejected) {
  Scenario s(healthy_config());
  std::optional<proto::InvokeResult> result;
  s.agent(0).invoke(s.app(), {s.host_ids()[0]}, "hi",
                    [&](const proto::InvokeResult& r) { result = r; });
  s.run_for(Duration::seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->reason, DenyReason::kNotAuthorized);
}

TEST(ProtoBasic, ForgedSignatureRejectedBeforeAclWork) {
  Scenario s(healthy_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  // Send an InvokeRequest claiming to be user 0 with a garbage signature.
  const HostId fake_endpoint(999999);
  std::optional<bool> accepted;
  std::optional<DenyReason> reason;
  s.network().register_host(
      fake_endpoint, [&](HostId, const net::MessagePtr& msg) {
        if (const auto* r = net::message_cast<proto::InvokeReply>(msg)) {
          accepted = r->accepted;
          reason = r->reason;
        }
      });
  s.network().send(fake_endpoint, s.host_ids()[0],
                   net::make_message<proto::InvokeRequest>(
                       s.app(), s.user(0), /*req=*/1, /*nonce=*/1,
                       auth::Signature{0xbad}, "payload"));
  s.run_for(Duration::seconds(5));
  ASSERT_TRUE(accepted.has_value());
  EXPECT_FALSE(*accepted);
  EXPECT_EQ(*reason, DenyReason::kAuthentication);
}

TEST(ProtoBasic, UnknownAppRejected) {
  Scenario s(healthy_config());
  std::optional<AccessDecision> d;
  s.host(0).controller().check_access(
      AppId(777), s.user(0), [&](const AccessDecision& dec) { d = dec; });
  s.run_for(Duration::seconds(1));
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->allowed);
  EXPECT_EQ(d->path, DecisionPath::kUnknownApp);
}

TEST(ProtoBasic, ExactQuorumFanoutSendsOnlyC) {
  auto cfg = healthy_config();
  cfg.protocol.fanout = proto::QueryFanout::kExactQuorum;
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.network().reset_stats();
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(s.network().stats().sent_by_type().at("QueryRequest"), 2u);  // C = 2
}

TEST(ProtoBasic, CheckQuorumOneAsksAllButNeedsOne) {
  auto cfg = healthy_config();
  cfg.protocol.check_quorum = 1;
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  EXPECT_TRUE(run_check(s, 0, s.user(0)).allowed);
}

TEST(ProtoBasic, IdleCacheEntriesSweptPeriodically) {
  auto cfg = healthy_config();
  cfg.protocol.Te = Duration::hours(2);            // expiry far away
  cfg.protocol.cache_sweep_period = Duration::seconds(30);
  cfg.protocol.cache_idle_limit = Duration::minutes(2);
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0));
  ASSERT_EQ(s.host(0).controller().cache(s.app())->size(), 1u);
  // No further accesses: the periodic sweep evicts the idle entry well
  // before its expiry ("save memory and processing overhead", §3.2).
  s.run_for(Duration::minutes(3));
  EXPECT_EQ(s.host(0).controller().cache(s.app())->size(), 0u);
  EXPECT_GE(s.host(0).controller().cache(s.app())->stats().idle_evictions, 1u);
}

TEST(ProtoBasic, HotCacheEntriesSurviveTheSweep) {
  auto cfg = healthy_config();
  cfg.protocol.Te = Duration::hours(2);
  cfg.protocol.cache_sweep_period = Duration::seconds(30);
  cfg.protocol.cache_idle_limit = Duration::minutes(2);
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0));
  // Keep the entry hot: one access per minute beats the 2-minute idle limit.
  for (int i = 0; i < 5; ++i) {
    s.run_for(Duration::minutes(1));
    EXPECT_TRUE(run_check(s, 0, s.user(0)).allowed);
  }
  EXPECT_EQ(s.host(0).controller().cache(s.app())->stats().idle_evictions, 0u);
}

TEST(ProtoBasic, DecisionObserverSeesEveryDecision) {
  Scenario s(healthy_config());
  int observed = 0;
  s.host(0).controller().set_decision_observer(
      [&](const AccessDecision&) { ++observed; });
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0));
  run_check(s, 0, s.user(0));
  run_check(s, 0, s.user(1));
  EXPECT_EQ(observed, 3);
}

}  // namespace
}  // namespace wan
