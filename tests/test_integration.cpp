// System-level integration scenarios combining partitions, crashes,
// recoveries, drifting clocks, workload, and policy knobs — the kind of runs
// the paper's protocol was designed for.
#include <gtest/gtest.h>

#include <optional>

#include "workload/driver.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using sim::Duration;
using workload::Driver;
using workload::DriverConfig;
using workload::Scenario;
using workload::ScenarioConfig;

TEST(Integration, MixedChaosRunStaysSafeAndAvailable) {
  ScenarioConfig cfg;
  cfg.managers = 5;
  cfg.app_hosts = 4;
  cfg.users = 12;
  cfg.partitions = ScenarioConfig::Partitions::kStorms;
  cfg.storm.mean_between_storms = Duration::minutes(3);
  cfg.storm.mean_storm_duration = Duration::seconds(40);
  cfg.loss = 0.01;
  cfg.drifting_clocks = true;
  cfg.protocol.clock_bound_b = 1.02;
  cfg.protocol.check_quorum = 3;
  cfg.protocol.Te = Duration::minutes(2);
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.seed = 1001;
  Scenario s(cfg);

  DriverConfig dcfg;
  dcfg.access_rate_per_host = 1.0;
  dcfg.manager_ops_per_second = 0.03;
  Driver driver(s, dcfg, 2002);
  driver.start();

  // Inject crashes and recoveries mid-run.
  auto& sched = s.scheduler();
  sched.schedule_after(Duration::minutes(5), [&] { s.host(0).crash(); });
  sched.schedule_after(Duration::minutes(7), [&] { s.host(0).recover(); });
  sched.schedule_after(Duration::minutes(10), [&] { s.manager(0).crash(); });
  sched.schedule_after(Duration::minutes(13), [&] { s.manager(0).recover(); });
  sched.schedule_after(Duration::minutes(15), [&] { s.manager(4).crash(); });
  sched.schedule_after(Duration::minutes(16), [&] { s.host(2).crash(); });
  sched.schedule_after(Duration::minutes(18), [&] { s.manager(4).recover(); });
  sched.schedule_after(Duration::minutes(20), [&] { s.host(2).recover(); });

  s.run_for(Duration::minutes(40));
  driver.stop();
  s.run_for(Duration::minutes(2));

  const auto& report = s.collector().report();
  EXPECT_GT(report.total, 1500u);
  EXPECT_EQ(report.security_violations, 0u);
  EXPECT_GT(report.availability(), 0.85);
  // Recovered managers resynced.
  EXPECT_TRUE(s.manager(0).manager().synced(s.app()));
  EXPECT_TRUE(s.manager(4).manager().synced(s.app()));
}

TEST(Integration, CacheMakesSteadyStateCheap) {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 5;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(20);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::minutes(10);
  cfg.seed = 3003;
  Scenario s(cfg);
  DriverConfig dcfg;
  dcfg.access_rate_per_host = 10.0;
  dcfg.manager_ops_per_second = 0.0;
  dcfg.initially_granted = 1.0;
  Driver driver(s, dcfg, 4004);
  driver.start();
  s.run_for(Duration::minutes(5));

  // "The delay ... is very small if the valid access control entry is
  // already in the cache": nearly every decision is a cache hit, so the mean
  // decision latency collapses far below one network RTT.
  const auto& col = s.collector();
  const auto hits = col.path_count(proto::DecisionPath::kCacheHit);
  EXPECT_GT(hits, col.report().total * 9 / 10);
  EXPECT_LT(col.all_latency().mean_seconds(), 0.010);

  // Control traffic is bounded by re-validations (O(C/Te)), not by accesses:
  // queries are a tiny fraction of the ~6000 accesses.
  const auto queries = s.network().stats().sent_by_type().at("QueryRequest");
  EXPECT_LT(queries, col.report().total / 20);
}

TEST(Integration, SecurityFirstVsAvailabilityFirstPolicies) {
  // Same seed, same chaos; only the application policy differs. The paper's
  // whole point: the application chooses which property bends.
  auto base = [] {
    ScenarioConfig cfg;
    cfg.managers = 3;
    cfg.app_hosts = 2;
    cfg.users = 8;
    cfg.partitions = ScenarioConfig::Partitions::kPairwise;
    cfg.pi = 0.35;
    cfg.mean_down = Duration::seconds(25);
    cfg.protocol.check_quorum = 2;
    cfg.protocol.Te = Duration::minutes(1);
    cfg.protocol.max_attempts = 2;
    cfg.protocol.query_timeout = Duration::seconds(1);
    cfg.seed = 5005;
    return cfg;
  };

  auto run = [](ScenarioConfig cfg) {
    Scenario s(cfg);
    DriverConfig dcfg;
    dcfg.access_rate_per_host = 2.0;
    dcfg.manager_ops_per_second = 0.05;
    Driver driver(s, dcfg, 6006);
    driver.start();
    s.run_for(Duration::minutes(20));
    return s.collector().report();
  };

  auto secure_cfg = base();
  secure_cfg.protocol.exhausted_policy = proto::ExhaustedPolicy::kDeny;
  const auto secure = run(secure_cfg);

  auto avail_cfg = base();
  avail_cfg.protocol.exhausted_policy = proto::ExhaustedPolicy::kAllow;
  const auto avail = run(avail_cfg);

  EXPECT_EQ(secure.security_violations, 0u);
  EXPECT_GT(avail.availability(), secure.availability());
  EXPECT_LE(avail.security(), secure.security());
}

TEST(Integration, LargerCheckQuorumSlowsChecksButTightensSecurity) {
  auto run = [](int c) {
    ScenarioConfig cfg;
    cfg.managers = 5;
    cfg.app_hosts = 1;
    cfg.users = 4;
    cfg.constant_latency = false;  // exponential-tail WAN latency
    cfg.protocol.check_quorum = c;
    cfg.seed = 7007;
    Scenario s(cfg);
    s.grant(s.user(0));
    s.run_for(Duration::seconds(5));
    std::optional<AccessDecision> d;
    s.check(0, s.user(0), [&](const AccessDecision& dec) { d = dec; });
    s.run_for(Duration::seconds(10));
    return d->latency().to_seconds();
  };
  // The C-th order statistic grows with C: O(C) delay claim, qualitatively.
  EXPECT_LT(run(1), run(5));
}

TEST(Integration, ManagerSetChangePropagatesViaNameServiceTtl) {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 1;
  cfg.users = 2;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 1;
  cfg.protocol.name_service_ttl = Duration::minutes(1);
  cfg.seed = 8008;
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));

  std::optional<AccessDecision> d;
  s.check(0, s.user(0), [&](const AccessDecision& dec) { d = dec; });
  s.run_for(Duration::seconds(5));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->allowed);
  // (The TTL behaviour itself is unit-tested in test_nameservice; here we
  // confirm the controller path resolves through the cached record.)
}

TEST(Integration, ReplayedInvokeRejectedEndToEnd) {
  ScenarioConfig cfg;
  cfg.managers = 1;
  cfg.app_hosts = 1;
  cfg.users = 1;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 1;
  cfg.seed = 9009;
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(2));

  // An eavesdropper captures a legitimately signed datagram and replays it.
  const HostId eavesdropper(555555);
  std::vector<bool> outcomes;
  s.network().register_host(eavesdropper,
                            [&](HostId, const net::MessagePtr& msg) {
                              if (const auto* r =
                                      net::message_cast<proto::InvokeReply>(msg)) {
                                outcomes.push_back(r->accepted);
                              }
                            });
  const UserId u = s.user(0);
  const std::uint64_t nonce = 1;
  const auth::Signature sig = auth::sign(
      u, auth::Authenticator::signed_bytes("payload", nonce),
      s.user_keys(0).secret);
  const auto captured = net::make_message<proto::InvokeRequest>(
      s.app(), u, /*req=*/1, nonce, sig, "payload");
  s.network().send(eavesdropper, s.host_ids()[0], captured);
  s.run_for(Duration::seconds(2));
  s.network().send(eavesdropper, s.host_ids()[0], captured);  // the replay
  s.run_for(Duration::seconds(2));

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0]);   // original accepted
  EXPECT_FALSE(outcomes[1]);  // replay bounced by the nonce floor
}

}  // namespace
}  // namespace wan
