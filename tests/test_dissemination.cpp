// The revocation-dissemination strategies (src/proto/dissemination.hpp):
// frame economics of the coalesced and tree strategies against the unicast
// reference, the Te bound under partitioned and Byzantine relays, relay
// bookkeeping on the host side, and the delta ACL sync recovery path with
// its full-snapshot fallback. The conformance sweeps prove the strategies
// DECIDE identically; this suite proves the collective ones are actually
// cheaper and fail safely.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/partition_model.hpp"
#include "obs/metrics.hpp"
#include "proto/host.hpp"
#include "proto/wire.hpp"
#include "runtime/backend.hpp"
#include "runtime/env_options.hpp"
#include "runtime/threaded_env.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using proto::DecisionPath;
using runtime::DisseminationKind;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

std::uint64_t counter(const char* name) {
  return obs::Registry::global().counter(name).value();
}

ScenarioConfig dissemination_config(DisseminationKind kind, int app_hosts) {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = app_hosts;
  cfg.users = 16;
  cfg.partitions = ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(30);
  cfg.protocol.clock_bound_b = 1.0;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.protocol.revoke_retransmit = Duration::millis(500);
  cfg.protocol.cache_sweep_period = Duration::seconds(5);
  cfg.protocol.dissemination.kind = kind;
  cfg.seed = 7;
  return cfg;
}

AccessDecision run_check(Scenario& s, int host, UserId user,
                         Duration window = Duration::seconds(5)) {
  std::optional<AccessDecision> result;
  s.check(host, user, [&](const AccessDecision& d) { result = d; });
  s.run_for(window);
  EXPECT_TRUE(result.has_value());
  return result.value_or(AccessDecision{});
}

// ------------------------------------------------------- frame economics

struct FanoutCost {
  std::uint64_t frames = 0;  ///< wan_revoke_fanout_frames_total delta
  std::uint64_t rights = 0;  ///< wan_revoke_coalesced_rights delta
};

/// Grants 4 users, caches them on every one of 32 hosts, then revokes all 4
/// at once and measures the dissemination frames the whole deployment spent
/// (3 managers each fan out to their full grant tables). Counters are
/// process-global, so the cost is measured as a delta around the revocation.
FanoutCost mass_revocation_cost(DisseminationKind kind) {
  constexpr int kHosts = 32;
  constexpr int kUsers = 4;
  Scenario s(dissemination_config(kind, kHosts));
  for (int u = 0; u < kUsers; ++u) s.grant(s.user(u), 0);
  s.run_for(Duration::seconds(2));
  for (int h = 0; h < kHosts; ++h) {
    for (int u = 0; u < kUsers; ++u) s.check(h, s.user(u));
  }
  s.run_for(Duration::seconds(5));
  for (int h = 0; h < kHosts; ++h) {
    EXPECT_EQ(s.host(h).controller().cache(s.app())->size(),
              static_cast<std::size_t>(kUsers))
        << "host " << h << " cache not fully populated before the revocation";
  }

  FanoutCost cost;
  cost.frames = counter("wan_revoke_fanout_frames_total");
  cost.rights = counter("wan_revoke_coalesced_rights");
  for (int u = 0; u < kUsers; ++u) s.revoke(s.user(u), 0);
  s.run_for(Duration::seconds(10));
  cost.frames = counter("wan_revoke_fanout_frames_total") - cost.frames;
  cost.rights = counter("wan_revoke_coalesced_rights") - cost.rights;

  // The revocation must actually have landed everywhere and fully drained.
  for (int h = 0; h < kHosts; ++h) {
    EXPECT_EQ(s.host(h).controller().cache(s.app())->size(), 0u)
        << "host " << h << " still caches a revoked right";
  }
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(s.manager(m).manager().inflight_revocations(), 0u)
        << "manager " << m << " did not drain its dissemination state";
  }
  return cost;
}

// The headline economics claim: with 32 cached hosts, coalescing revokes
// into RevokeBatch frames — flat or through relay trees — spends at least
// 3x fewer frames per mass revocation than the paper's unicast loop, while
// delivering the identical outcome (asserted inside the helper).
TEST(DisseminationFrames, CollectiveStrategiesCutFramesAtLeast3x) {
  const FanoutCost unicast = mass_revocation_cost(DisseminationKind::kUnicast);
  const FanoutCost coalesced =
      mass_revocation_cost(DisseminationKind::kCoalesced);
  const FanoutCost tree = mass_revocation_cost(DisseminationKind::kTree);

  ASSERT_GT(unicast.frames, 0u);
  ASSERT_GT(coalesced.frames, 0u);
  ASSERT_GT(tree.frames, 0u);
  EXPECT_GE(unicast.frames, 3 * coalesced.frames)
      << "coalesced dissemination is not >=3x cheaper than unicast";
  EXPECT_GE(unicast.frames, 3 * tree.frames)
      << "tree dissemination is not >=3x cheaper than unicast";

  // Unicast never batches, so it must not touch the coalescing counter;
  // the collective strategies carry several rights per frame.
  EXPECT_EQ(unicast.rights, 0u);
  EXPECT_GT(coalesced.rights, coalesced.frames);
  EXPECT_GT(tree.rights, tree.frames);
}

// --------------------------------------------- relay faults and Te bound

/// Tree deployment small enough that all app hosts land in ONE relay group
/// (relay_width defaults to 4), so host 0 — the lowest id — is the round-0
/// relay choice.
ScenarioConfig one_group_tree_config() {
  ScenarioConfig cfg = dissemination_config(DisseminationKind::kTree, 4);
  return cfg;
}

void cache_user_everywhere(Scenario& s, UserId user) {
  ASSERT_TRUE(s.grant(user, 0));
  s.run_for(Duration::seconds(2));
  for (int h = 0; h < s.host_count(); ++h) s.check(h, user);
  s.run_for(Duration::seconds(3));
  for (int h = 0; h < s.host_count(); ++h) {
    ASSERT_EQ(s.host(h).controller().cache(s.app())->size(), 1u);
  }
}

// A partitioned relay must cost one retransmit period, not the bound: the
// manager's retry rotates relay duty to the next unconfirmed group member,
// so every reachable host flushes within a couple of rounds, and the
// unreachable ex-relay's own cached entry expires on its local clock by Te
// (the delivery-leak oracle's argument).
TEST(TreeDissemination, PartitionedRelayRotatesAndTeBoundsTheLeak) {
  Scenario s(one_group_tree_config());
  cache_user_everywhere(s, s.user(0));

  // Cut the round-0 relay off from the whole world, THEN revoke.
  s.scripted().isolate(s.host_ids()[0], s.all_site_ids());
  ASSERT_TRUE(s.revoke(s.user(0), 0));
  s.run_for(Duration::seconds(3));
  for (int h = 1; h < s.host_count(); ++h) {
    EXPECT_EQ(s.host(h).controller().cache(s.app())->size(), 0u)
        << "host " << h << " was not flushed after relay rotation";
  }
  // The isolated host still holds its copy — the leak the bound absorbs.
  EXPECT_EQ(s.host(0).controller().cache(s.app())->size(), 1u);

  // By Te (plus sweep slack) the copy has expired and the managers have
  // retired the unreachable destination instead of retrying forever.
  s.run_for(s.config().protocol.Te + Duration::seconds(12));
  EXPECT_EQ(s.host(0).controller().cache(s.app())->size(), 0u);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(s.manager(m).manager().inflight_revocations(), 0u);
  }
}

// The worst relay lie: ack the whole group as delivered, deliver nothing.
// The managers believe it and stop retransmitting — and the protocol is
// STILL safe, because every cached entry expires on its holder's local
// clock within te <= Te. This is the dissemination analogue of the chaos
// harness's delivery-leak oracle.
TEST(TreeDissemination, LyingRelayIsBoundedByLocalExpiry) {
  Scenario s(one_group_tree_config());
  cache_user_everywhere(s, s.user(0));

  s.host(0).controller().debug_set_lying_relay(true);
  ASSERT_TRUE(s.revoke(s.user(0), 0));
  s.run_for(Duration::seconds(3));

  // The lie worked: managers drained, yet the leaves were never flushed.
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(s.manager(m).manager().inflight_revocations(), 0u)
        << "manager " << m << " saw through a lie it has no way to detect";
  }
  std::size_t still_cached = 0;
  for (int h = 0; h < s.host_count(); ++h) {
    still_cached += s.host(h).controller().cache(s.app())->size();
  }
  EXPECT_GT(still_cached, 0u) << "the lying relay delivered after all";

  // ... but no host may ALLOW the revoked user past Te.
  s.run_for(s.config().protocol.Te + Duration::seconds(12));
  for (int h = 0; h < s.host_count(); ++h) {
    EXPECT_EQ(s.host(h).controller().cache(s.app())->size(), 0u)
        << "host " << h << " leaked a revoked right past Te";
  }
  const AccessDecision d = run_check(s, 1, s.user(0));
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kQuorumDenied);
}

// Relay duty held for a manager is volatile bookkeeping, not protocol
// state: sessions idle for Te (nothing left to retransmit for) are purged
// by the cache sweep, so a long-lived host does not accrete one session per
// historical revocation.
TEST(TreeDissemination, RelaySessionsPurgeAfterTe) {
  Scenario s(one_group_tree_config());
  cache_user_everywhere(s, s.user(0));
  ASSERT_TRUE(s.revoke(s.user(0), 0));
  s.run_for(Duration::seconds(3));
  // One session per disseminating manager (all three fanned out).
  EXPECT_EQ(s.host(0).controller().relay_sessions(), 3u);

  s.run_for(s.config().protocol.Te + Duration::seconds(12));
  EXPECT_EQ(s.host(0).controller().relay_sessions(), 0u);
}

// ------------------------------------------------------ coalesced basics

// flush_interval zero disables the coalescing window: every revocation is
// dispatched the instant it arrives (the latency profile of unicast with
// the framing of RevokeBatch), and the strategy still drains cleanly.
TEST(CoalescedDissemination, ZeroFlushIntervalDispatchesImmediately) {
  ScenarioConfig cfg = dissemination_config(DisseminationKind::kCoalesced, 3);
  cfg.protocol.dissemination.flush_interval = Duration{};
  Scenario s(cfg);
  for (int u = 0; u < 2; ++u) {
    ASSERT_TRUE(s.grant(s.user(u), 0));
  }
  s.run_for(Duration::seconds(2));
  for (int h = 0; h < s.host_count(); ++h) {
    for (int u = 0; u < 2; ++u) s.check(h, s.user(u));
  }
  s.run_for(Duration::seconds(3));

  for (int u = 0; u < 2; ++u) ASSERT_TRUE(s.revoke(s.user(u), 0));
  s.run_for(Duration::seconds(1));
  for (int h = 0; h < s.host_count(); ++h) {
    EXPECT_EQ(s.host(h).controller().cache(s.app())->size(), 0u);
  }
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(s.manager(m).manager().inflight_revocations(), 0u);
  }
}

// ------------------------------------------------------------ delta sync

ScenarioConfig delta_sync_config() {
  ScenarioConfig cfg = dissemination_config(DisseminationKind::kUnicast, 2);
  cfg.protocol.dissemination.delta_sync = true;
  return cfg;
}

// The suffix regression the wire tag exists for: a recovering manager's
// FIRST sync round (no cursor) transfers the peer's full snapshot; once a
// cursor is held, later rounds transfer EXACTLY the updates applied since —
// pinned by sync_entries_sent, which would balloon if the peer fell back to
// snapshots. The second peer is cut off to keep the sync open across rounds.
TEST(DeltaSync, LaterRoundsTransferOnlyThePostCursorSuffix) {
  Scenario s(delta_sync_config());
  for (int u = 0; u < 6; ++u) ASSERT_TRUE(s.grant(s.user(u), 0));
  s.run_for(Duration::seconds(2));

  s.manager(1).crash();
  s.run_for(Duration::seconds(1));
  s.scripted().cut_link(s.manager_ids()[1], s.manager_ids()[2]);
  const std::uint64_t sent0 = s.manager(0).manager().sync_entries_sent();
  s.manager(1).recover();

  // Round 1 (no cursor): manager 0 serves its full 6-entry snapshot; the
  // cut peer cannot vote, so the sync stays open.
  s.run_for(Duration::millis(500));
  EXPECT_EQ(s.manager(0).manager().sync_entries_sent() - sent0, 6u);
  EXPECT_FALSE(s.manager(1).manager().synced(s.app()));

  // Two more updates land while the recovering manager waits...
  ASSERT_TRUE(s.grant(s.user(6), 0));
  ASSERT_TRUE(s.grant(s.user(7), 0));
  // ... so round 2 (cursor = 6) must transfer exactly that 2-entry suffix.
  s.run_for(Duration::seconds(3));
  EXPECT_EQ(s.manager(0).manager().sync_entries_sent() - sent0, 8u);

  // Further rounds have an empty suffix: the count is pinned flat.
  s.run_for(Duration::seconds(4));
  EXPECT_EQ(s.manager(0).manager().sync_entries_sent() - sent0, 8u);

  s.scripted().heal_all();
  s.run_for(Duration::seconds(3));
  EXPECT_TRUE(s.manager(1).manager().synced(s.app()));
}

// Correctness never depends on the capped apply log: once compaction has
// advanced past the requester's cursor, the peer answers with the full
// snapshot again (6 initial + 6 new = 12 entries, not the 6-entry suffix a
// still-valid cursor would have bought).
TEST(DeltaSync, FallsBackToFullSnapshotWhenTheLogCompactedPastTheCursor) {
  ScenarioConfig cfg = delta_sync_config();
  cfg.protocol.dissemination.delta_log_cap = 4;
  Scenario s(cfg);
  for (int u = 0; u < 6; ++u) ASSERT_TRUE(s.grant(s.user(u), 0));
  s.run_for(Duration::seconds(2));

  s.manager(1).crash();
  s.run_for(Duration::seconds(1));
  s.scripted().cut_link(s.manager_ids()[1], s.manager_ids()[2]);
  const std::uint64_t sent0 = s.manager(0).manager().sync_entries_sent();
  s.manager(1).recover();
  s.run_for(Duration::millis(500));
  EXPECT_EQ(s.manager(0).manager().sync_entries_sent() - sent0, 6u);

  // Six more updates overflow the 4-entry log: floor moves to 8, past the
  // recovering manager's cursor of 6.
  for (int u = 6; u < 12; ++u) ASSERT_TRUE(s.grant(s.user(u), 0));
  s.run_for(Duration::seconds(3));
  EXPECT_EQ(s.manager(0).manager().sync_entries_sent() - sent0, 6u + 12u);

  s.scripted().heal_all();
  s.run_for(Duration::seconds(3));
  EXPECT_TRUE(s.manager(1).manager().synced(s.app()));
}

// --------------------------------------------- threaded smoke (TSan job)

// The batching strategies own timers and retransmission state driven from a
// real event-loop thread while acks arrive from peer threads through the
// loopback fabric. This deployment mirrors the conformance harness in
// miniature so the TSan CI job can race-check the dissemination path
// end-to-end: grant, cache on every host, revoke, drain.
TEST(DisseminationThreaded, CollectiveRevocationOverLoopbackFabric) {
  for (const DisseminationKind kind :
       {DisseminationKind::kCoalesced, DisseminationKind::kTree}) {
    SCOPED_TRACE(runtime::to_cstring(kind));
    proto::register_wire_messages();
    runtime::EnvOptions opts;
    opts.backend = runtime::BackendKind::kLoopback;
    opts.delay = Duration::millis(1);
    std::string error;
    auto fabric = runtime::make_fabric(opts, &error);
    ASSERT_NE(fabric, nullptr) << error;

    const AppId app{1};
    const UserId alice{7};
    const std::vector<HostId> manager_ids{HostId(0), HostId(1), HostId(2)};
    const std::vector<HostId> host_ids{HostId(100), HostId(101), HostId(102)};
    proto::ProtocolConfig config;
    config.check_quorum = 2;
    config.Te = Duration::minutes(2);
    config.dissemination.kind = kind;
    config.dissemination.relay_width = 2;  // a real relay hop with 3 hosts

    ns::NameService names;
    auth::KeyRegistry keys;
    std::vector<std::unique_ptr<runtime::ThreadedEnv>> envs;
    for (std::size_t i = 0; i < manager_ids.size() + host_ids.size(); ++i) {
      envs.push_back(std::make_unique<runtime::ThreadedEnv>(*fabric));
    }
    std::vector<std::unique_ptr<proto::ManagerHost>> managers;
    for (std::size_t i = 0; i < manager_ids.size(); ++i) {
      managers.push_back(std::make_unique<proto::ManagerHost>(
          manager_ids[i], *envs[i], clk::LocalClock::perfect(), config));
    }
    names.set_managers(app, manager_ids);
    for (std::size_t i = 0; i < managers.size(); ++i) {
      envs[i]->run_sync(
          [&, i] { managers[i]->manager().manage_app(app, manager_ids); });
    }
    std::vector<std::unique_ptr<proto::AppHost>> hosts;
    for (std::size_t i = 0; i < host_ids.size(); ++i) {
      auto& env = *envs[manager_ids.size() + i];
      hosts.push_back(std::make_unique<proto::AppHost>(
          host_ids[i], env, clk::LocalClock::perfect(), names, keys, config));
      env.run_sync([&] {
        hosts.back()->controller().register_app(
            app, [](UserId, const std::string& p) { return p; });
      });
    }

    const auto eventually = [](const std::function<bool()>& pred) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return true;
    };
    const auto barrier_update = [&](acl::Op op) {
      auto done = std::make_shared<std::atomic<bool>>(false);
      envs[0]->run_sync([&] {
        managers[0]->manager().submit_update(
            app, op, alice, acl::Right::kUse,
            [done](const proto::UpdateOutcome&) { done->store(true); });
      });
      return eventually([done] { return done->load(); });
    };
    const auto barrier_check = [&](std::size_t h) {
      struct Slot {
        std::mutex mu;
        std::optional<bool> allowed;
      };
      auto slot = std::make_shared<Slot>();
      envs[manager_ids.size() + h]->run_sync([&] {
        hosts[h]->controller().check_access(
            app, alice, [slot](const AccessDecision& d) {
              const std::lock_guard<std::mutex> lock(slot->mu);
              slot->allowed = d.allowed;
            });
      });
      EXPECT_TRUE(eventually([slot] {
        const std::lock_guard<std::mutex> lock(slot->mu);
        return slot->allowed.has_value();
      }));
      const std::lock_guard<std::mutex> lock(slot->mu);
      return slot->allowed.value_or(false);
    };

    ASSERT_TRUE(barrier_update(acl::Op::kAdd));
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      EXPECT_TRUE(barrier_check(h)) << "host " << h << " denied a granted user";
    }
    ASSERT_TRUE(barrier_update(acl::Op::kRevoke));
    // Every cache flushes and every manager drains its batches (the check
    // itself re-queries, so a deny proves the cached copy is gone).
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      EXPECT_TRUE(eventually([&] { return !barrier_check(h); }))
          << "host " << h << " kept allowing after the revocation";
    }
    for (std::size_t m = 0; m < managers.size(); ++m) {
      EXPECT_TRUE(eventually([&] {
        std::size_t inflight = 1;
        envs[m]->run_sync(
            [&] { inflight = managers[m]->manager().inflight_revocations(); });
        return inflight == 0;
      })) << "manager " << m << " never drained its dissemination state";
    }
    fabric->stop_all();
  }
}

}  // namespace
}  // namespace wan
