// Manager-set reconfiguration (§3.2's name-service extension): adding and
// removing managers from Managers(A) at runtime, with hosts discovering the
// change through TTL-based re-resolution and newcomers syncing state before
// serving.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "auth/credentials.hpp"
#include "nameservice/name_service.hpp"
#include "net/network.hpp"
#include "proto/host.hpp"
#include "runtime/sim_env.hpp"
#include "sim/scheduler.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using sim::Duration;

struct ReconfigFixture : ::testing::Test {
  sim::Scheduler sched;
  std::shared_ptr<net::ScriptedPartitions> partitions =
      std::make_shared<net::ScriptedPartitions>();
  std::unique_ptr<net::Network> net;
  std::unique_ptr<runtime::SimEnv> env;
  ns::NameService names;
  auth::KeyRegistry keys;
  proto::ProtocolConfig config;
  AppId app{1};
  UserId alice{100};
  std::vector<std::unique_ptr<proto::ManagerHost>> managers;  // ids 0..3
  std::unique_ptr<proto::AppHost> host;

  /// Derived fixtures adjust `config` here, before any site is constructed.
  virtual void configure() {}

  void SetUp() override {
    net::Network::Config ncfg;
    ncfg.latency = std::make_unique<net::ConstantLatency>(Duration::millis(10));
    ncfg.partitions = partitions;
    net = std::make_unique<net::Network>(sched, Rng(9), std::move(ncfg));
    env = std::make_unique<runtime::SimEnv>(*net);

    config.check_quorum = 2;
    config.Te = Duration::minutes(2);
    config.name_service_ttl = Duration::seconds(30);
    configure();

    for (std::uint32_t i = 0; i < 4; ++i) {
      managers.push_back(std::make_unique<proto::ManagerHost>(
          HostId(i), *env, clk::LocalClock::perfect(), config));
    }
    // Initial set: {0, 1, 2}; manager 3 exists but is not a member yet.
    const std::vector<HostId> initial{HostId(0), HostId(1), HostId(2)};
    names.set_managers(app, initial);
    for (std::uint32_t i = 0; i < 3; ++i) {
      managers[i]->manager().manage_app(app, initial);
    }
    host = std::make_unique<proto::AppHost>(HostId(50), *env, clk::LocalClock::perfect(), names,
                                            keys, config);
    host->controller().register_app(
        app, [](UserId, const std::string&) { return std::string("ok"); });
    net->start();
  }

  std::optional<AccessDecision> check() {
    std::optional<AccessDecision> d;
    host->controller().check_access(app, alice,
                                    [&](const AccessDecision& dec) { d = dec; });
    sched.run_until(sched.now() + Duration::seconds(10));
    return d;
  }

  void run(Duration d) { sched.run_until(sched.now() + d); }

  void reconfigure(const std::vector<HostId>& new_set) {
    names.set_managers(app, new_set);
    for (const HostId id : new_set) {
      managers[id.value()]->manager().reconfigure_app(app, new_set);
    }
  }
};

TEST_F(ReconfigFixture, NewManagerSyncsBeforeServing) {
  managers[0]->manager().submit_update(app, acl::Op::kAdd, alice,
                                       acl::Right::kUse);
  run(Duration::seconds(5));
  ASSERT_TRUE(check()->allowed);

  reconfigure({HostId(0), HostId(1), HostId(2), HostId(3)});
  run(Duration::seconds(5));
  EXPECT_TRUE(managers[3]->manager().synced(app));
  EXPECT_TRUE(
      managers[3]->manager().store(app)->check(alice, acl::Right::kUse));
}

TEST_F(ReconfigFixture, HostsDiscoverNewSetAfterTtl) {
  managers[0]->manager().submit_update(app, acl::Op::kAdd, alice,
                                       acl::Right::kUse);
  run(Duration::seconds(5));
  ASSERT_TRUE(check()->allowed);  // caches the {0,1,2} resolution

  reconfigure({HostId(1), HostId(2), HostId(3)});
  managers[0]->manager().forget_app(app);
  // Physically remove manager 0 so success can only come from the new set.
  partitions->isolate(HostId(0), {HostId(1), HostId(2), HostId(3), HostId(50)});

  // Within the TTL the host may still try the old set; after it lapses the
  // re-resolution must route checks to {1, 2, 3}. (The cached ACL entry is
  // flushed by expiry independently; force a fresh check via a new user.)
  run(Duration::seconds(31));  // TTL = 30s
  std::optional<AccessDecision> d;
  const UserId bob{101};
  managers[1]->manager().submit_update(app, acl::Op::kAdd, bob,
                                       acl::Right::kUse);
  run(Duration::seconds(5));
  host->controller().check_access(app, bob,
                                  [&](const AccessDecision& dec) { d = dec; });
  run(Duration::seconds(10));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->allowed);
  EXPECT_EQ(d->path, proto::DecisionPath::kQuorumGranted);
}

TEST_F(ReconfigFixture, SurvivorsPruneDepartedPeersFromInflightWork) {
  // Manager 0 departs while an update from manager 1 is still undelivered to
  // it; the transaction must still fully retire (pending set pruned).
  partitions->isolate(HostId(0), {HostId(1), HostId(2), HostId(3), HostId(50)});
  bool quorum = false;
  managers[1]->manager().submit_update(app, acl::Op::kAdd, alice,
                                       acl::Right::kUse,
                                       [&](const proto::UpdateOutcome&) {
                                         quorum = true;
                                       });
  run(Duration::seconds(5));
  ASSERT_TRUE(quorum);  // update quorum 2 via {1, 2}
  EXPECT_EQ(managers[1]->manager().inflight_updates(app), 1u);  // 0 unacked

  reconfigure({HostId(1), HostId(2), HostId(3)});
  run(Duration::seconds(10));
  // Departed 0 pruned: nothing in flight remains. (Newcomer 3 learns the
  // update through its recovery sync, not through this transaction.)
  EXPECT_EQ(managers[1]->manager().inflight_updates(app), 0u);
  EXPECT_TRUE(managers[3]->manager().store(app)->check(alice, acl::Right::kUse));
}

TEST_F(ReconfigFixture, NewcomerWithUnreachablePeersStaysUnsynced) {
  managers[0]->manager().submit_update(app, acl::Op::kAdd, alice,
                                       acl::Right::kUse);
  run(Duration::seconds(5));
  partitions->isolate(HostId(3), {HostId(0), HostId(1), HostId(2)});
  reconfigure({HostId(0), HostId(1), HostId(2), HostId(3)});
  run(Duration::seconds(10));
  EXPECT_FALSE(managers[3]->manager().synced(app));
  partitions->heal_all();
  run(Duration::seconds(10));
  EXPECT_TRUE(managers[3]->manager().synced(app));
}

TEST_F(ReconfigFixture, ForgottenAppIgnoresTraffic) {
  managers[0]->manager().forget_app(app);
  EXPECT_EQ(managers[0]->manager().store(app), nullptr);
  // Queries to it are silently dropped; a check needing it times out only if
  // the others are gone too. With the remaining two up, checks still pass.
  managers[1]->manager().submit_update(app, acl::Op::kAdd, alice,
                                       acl::Right::kUse);
  run(Duration::seconds(5));
  EXPECT_TRUE(check()->allowed);
}

// --- freeze strategy x reconfiguration (§3.3 meets §3.2) --------------------
// The silence bookkeeping must track the CURRENT Managers(A): a departed
// peer's silence may not freeze survivors forever, and an adopted peer gets a
// full Ti of credit before its silence can count.

struct FreezeReconfigFixture : ReconfigFixture {
  void configure() override {
    config.check_quorum = 1;  // §3.3 pins C to 1
    config.freeze_enabled = true;
    config.Ti = Duration::seconds(30);
    config.heartbeat_period = Duration::seconds(5);
    config.clock_bound_b = 1.0;  // threshold = Ti / b = 30s exactly
  }
};

TEST_F(FreezeReconfigFixture, DepartedPeerStopsCountingTowardFreeze) {
  run(Duration::seconds(10));  // heartbeats flowing, nobody silent
  ASSERT_FALSE(managers[0]->manager().frozen(app));

  partitions->isolate(HostId(2), {HostId(0), HostId(1), HostId(3), HostId(50)});
  run(Duration::seconds(40));  // silence > Ti / b
  ASSERT_TRUE(managers[0]->manager().frozen_by_silence(app));

  // The operator removes the dead manager from Managers(A); the survivors
  // must unfreeze as soon as every REMAINING peer has been heard.
  reconfigure({HostId(0), HostId(1)});
  managers[2]->manager().forget_app(app);
  run(Duration::seconds(6));  // one heartbeat round among {0, 1}
  EXPECT_FALSE(managers[0]->manager().frozen_by_silence(app));
  EXPECT_FALSE(managers[0]->manager().frozen(app));
  for (const auto& ps : managers[0]->manager().peer_silences(app)) {
    EXPECT_NE(ps.peer, HostId(2));  // departed peer left the bookkeeping
  }
}

TEST_F(FreezeReconfigFixture, AdoptedPeerGetsFullTiBeforeFreezing) {
  run(Duration::seconds(10));
  // Adopt manager 3 while it is unreachable from the very first instant:
  // adoption must seed its silence clock at "just heard" rather than zero,
  // or the newcomer would freeze the whole set before its first heartbeat.
  partitions->isolate(HostId(3), {HostId(0), HostId(1), HostId(2), HostId(50)});
  reconfigure({HostId(0), HostId(1), HostId(2), HostId(3)});
  run(Duration::seconds(1));

  bool tracked3 = false;
  for (const auto& ps : managers[0]->manager().peer_silences(app)) {
    if (ps.peer == HostId(3)) {
      tracked3 = ps.tracked;
      EXPECT_LE(ps.silence, Duration::seconds(2));
    }
  }
  EXPECT_TRUE(tracked3);
  EXPECT_FALSE(managers[0]->manager().frozen_by_silence(app));

  run(Duration::seconds(20));  // ~21s of silence, still under Ti / b = 30s
  EXPECT_FALSE(managers[0]->manager().frozen_by_silence(app));
  run(Duration::seconds(20));  // now well past the threshold
  EXPECT_TRUE(managers[0]->manager().frozen_by_silence(app));
}

}  // namespace
}  // namespace wan
