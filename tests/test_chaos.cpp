// Chaos harness self-tests: the invariant oracles must catch planted
// violations (an oracle that never fires proves nothing), replays must be
// bit-identical, the shrinker must minimize, and the seeds that exposed real
// protocol bugs must stay fixed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "acl/cache.hpp"
#include "chaos/engine.hpp"
#include "chaos/fault_schedule.hpp"
#include "chaos/oracle.hpp"
#include "net/partition_model.hpp"
#include "proto/access_controller.hpp"
#include "proto/host.hpp"
#include "proto/manager.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using chaos::ChaosOptions;
using chaos::ChaosResult;
using chaos::InvariantOracle;
using chaos::ViolationKind;
using proto::AccessDecision;
using proto::DecisionPath;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig oracle_config() {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 4;
  cfg.partitions = ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(60);
  cfg.protocol.clock_bound_b = 1.0;
  cfg.seed = 17;
  return cfg;
}

ScenarioConfig freeze_config() {
  // §3.3 regime: C pinned to 1, the budget Te split between Ti and te.
  ScenarioConfig cfg = oracle_config();
  cfg.protocol.check_quorum = 1;
  cfg.protocol.freeze_enabled = true;
  cfg.protocol.Ti = Duration::seconds(20);
  cfg.protocol.heartbeat_period = Duration::seconds(5);
  return cfg;
}

bool has_kind(const InvariantOracle& oracle, ViolationKind kind) {
  for (const auto& v : oracle.violations()) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(ChaosOracle, CleanScenarioReportsNothing) {
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(5));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));
  oracle.final_checks({0, 1, 2});
  EXPECT_EQ(oracle.violation_count(), 0u)
      << (oracle.violations().empty() ? "" : oracle.violations()[0].detail);
  EXPECT_GT(oracle.decisions(), 0u);
  EXPECT_GT(oracle.checkpoints(), 0u);
}

TEST(ChaosOracle, CatchesPlantedCacheTtlOverrun) {
  // An entry whose expiry limit sits further than te ahead of the local
  // clock cannot come from Fig. 3's insertion rule; the oracle must flag it.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.run_for(Duration::seconds(1));

  auto* cache = s.host(0).controller().mutable_cache(s.app());
  ASSERT_NE(cache, nullptr);
  const clk::LocalTime now = s.host(0).controller().local_now();
  cache->insert(s.user(0), acl::RightSet(acl::Right::kUse),
                now + Duration::seconds(600), acl::Version{}, now);
  oracle.checkpoint();
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kCacheTtlBound));
}

TEST(ChaosOracle, CatchesPlantedLatentRevokedEntry) {
  // A live cache entry > Te past its user's revoke quorum instant means the
  // flush + expiry machinery failed. Plant one (with a limit INSIDE the te
  // bound, so only the latent oracle can fire) and verify detection.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(2));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));  // well past Te = 60s
  ASSERT_FALSE(has_kind(oracle, ViolationKind::kLatentRevokedEntry));

  auto* cache = s.host(0).controller().mutable_cache(s.app());
  const clk::LocalTime now = s.host(0).controller().local_now();
  cache->insert(s.user(0), acl::RightSet(acl::Right::kUse),
                now + Duration::seconds(30), acl::Version{}, now);
  oracle.checkpoint();
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kLatentRevokedEntry));
  EXPECT_FALSE(has_kind(oracle, ViolationKind::kCacheTtlBound));
}

TEST(ChaosOracle, CatchesSecurityDecisionBeyondTe) {
  // End-to-end decision oracle: revoke, let Te pass, then make the host
  // allow from a planted stale cache entry. The resulting decision must be
  // classified as a security violation.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(2));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));

  auto* cache = s.host(0).controller().mutable_cache(s.app());
  const clk::LocalTime now = s.host(0).controller().local_now();
  cache->insert(s.user(0), acl::RightSet(acl::Right::kUse),
                now + Duration::seconds(30), acl::Version{}, now);
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(2));
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kSecurityDecision));
}

TEST(ChaosOracle, CatchesConflictingVersionDecisions) {
  // Quorum intersection means one update version cannot read as both grant
  // and revoke; present two crafted decisions that disagree.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  AccessDecision d;
  d.app = s.app();
  d.user = s.user(0);
  d.host = s.host_ids()[0];
  d.allowed = true;
  d.path = DecisionPath::kQuorumGranted;
  d.basis_version = acl::Version{4, s.manager_ids()[0], 77};
  oracle.ingest(d);
  EXPECT_FALSE(has_kind(oracle, ViolationKind::kQuorumConflict));

  d.allowed = false;
  d.path = DecisionPath::kQuorumDenied;
  oracle.ingest(d);
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kQuorumConflict));
}

TEST(ChaosOracle, ByzantineTaintedVersionIsExemptFromQuorumConflict) {
  // Seed 110 regression: a liar may answer with an INCOMPLETE update's
  // version, bit flipped — hosts whose honest responders are still behind it
  // read the flip, others read the truth, and no intersection argument is
  // violated (the update never completed, so no Te clock runs). Once a
  // byzantine answer carries a version, that version leaves the oracle's
  // equal-version bookkeeping for the rest of the run.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  const acl::Version v{4, s.manager_ids()[0], 77};

  proto::ManagerModule::QueryAnswerEvent ev;
  ev.app = s.app();
  ev.user = s.user(0);
  ev.host = s.host_ids()[0];
  ev.version = v;
  ev.byzantine = true;
  oracle.ingest_response(0, ev);

  AccessDecision d;
  d.app = s.app();
  d.user = s.user(0);
  d.host = s.host_ids()[0];
  d.allowed = true;
  d.path = DecisionPath::kQuorumGranted;
  d.basis_version = v;
  oracle.ingest(d);
  d.allowed = false;
  d.path = DecisionPath::kQuorumDenied;
  oracle.ingest(d);
  EXPECT_FALSE(has_kind(oracle, ViolationKind::kQuorumConflict));

  // An untouched version still conflicts as before.
  d.basis_version = acl::Version{5, s.manager_ids()[1], 78};
  d.allowed = true;
  d.path = DecisionPath::kQuorumGranted;
  oracle.ingest(d);
  d.allowed = false;
  d.path = DecisionPath::kQuorumDenied;
  oracle.ingest(d);
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kQuorumConflict));
}

TEST(ChaosOracle, DefaultAllowLeaksAreExpectedNotViolations) {
  Scenario s(oracle_config());
  InvariantOracle::Config cfg;
  cfg.default_allow_expected = true;
  InvariantOracle oracle(s, cfg);
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(2));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));

  AccessDecision d;
  d.app = s.app();
  d.user = s.user(0);
  d.host = s.host_ids()[0];
  d.requested = s.scheduler().now();
  d.decided = s.scheduler().now();
  d.allowed = true;
  d.path = DecisionPath::kDefaultAllow;
  oracle.ingest(d);
  EXPECT_FALSE(has_kind(oracle, ViolationKind::kSecurityDecision));
  EXPECT_EQ(oracle.expected_leaks(), 1u);
}

// --- freeze-strategy oracle (tentpole: the §3.3 adversary) ------------------

TEST(FreezeOracle, CleanFreezeRunReportsNothing) {
  Scenario s(freeze_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(5));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));
  oracle.final_checks({0, 1, 2});
  EXPECT_EQ(oracle.violation_count(), 0u)
      << (oracle.violations().empty() ? "" : oracle.violations()[0].detail);
  EXPECT_GT(oracle.decisions(), 0u);
}

TEST(FreezeOracle, CatchesCraftedFrozenAnswerEvent) {
  // Unit-level: an answer event carrying frozen_by_silence must fire
  // regardless of how the manager came to send it.
  Scenario s(freeze_config());
  InvariantOracle oracle(s, {});
  proto::ManagerModule::QueryAnswerEvent ev;
  ev.app = s.app();
  ev.user = s.user(0);
  ev.host = s.host_ids()[0];
  ev.frozen_by_silence = true;
  oracle.ingest_response(0, ev);
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kFrozenManagerAnswered));
}

TEST(FreezeOracle, CatchesManagerAnsweringWhileFrozen) {
  // End-to-end: isolate manager 0 from its peers until §3.3 freezes it, then
  // force frozen() to report false so it answers a live check — the planted
  // compromise the freeze oracle exists to catch.
  Scenario s(freeze_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));

  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[1]);
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[2]);
  s.run_for(Duration::seconds(30));  // silence > Ti/b = 20s
  ASSERT_TRUE(s.manager(0).manager().frozen_by_silence(s.app()));
  ASSERT_FALSE(has_kind(oracle, ViolationKind::kFrozenManagerAnswered));

  s.manager(0).manager().debug_override_frozen(false);
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(5));
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kFrozenManagerAnswered));
}

TEST(FreezeOracle, CatchesPrematureUnfreeze) {
  // A manager reporting unfrozen while a peer has been silent past Ti/b
  // contradicts the silence evidence; checkpoint() must flag it.
  Scenario s(freeze_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.run_for(Duration::seconds(5));
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[1]);
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[2]);
  s.run_for(Duration::seconds(30));
  ASSERT_FALSE(has_kind(oracle, ViolationKind::kPrematureUnfreeze));

  s.manager(0).manager().debug_override_frozen(false);
  oracle.checkpoint();
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kPrematureUnfreeze));
}

TEST(FreezeOracle, CatchesAllowBeyondFreezeBound) {
  // Same planted-stale-entry attack as the Te decision oracle test, but in a
  // freeze run: the freeze oracle recomputes the bound from Ti + te*b and
  // must fire alongside the ground-truth classification.
  Scenario s(freeze_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(2));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));  // well past the bound

  auto* cache = s.host(0).controller().mutable_cache(s.app());
  const clk::LocalTime now = s.host(0).controller().local_now();
  cache->insert(s.user(0), acl::RightSet(acl::Right::kUse),
                now + Duration::seconds(30), acl::Version{}, now);
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(2));
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kFreezeBoundExceeded));
}

// --- one-way link oracle (tentpole: asymmetric partitions) ------------------

TEST(OneWayOracle, CatchesDeliveryAcrossCutDirection) {
  // Tell the oracle a direction is cut WITHOUT cutting the model: the next
  // send on that pair is exactly the fabric leak the oracle must flag.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  oracle.note_one_way_cut(s.host_ids()[0], s.manager_ids()[0]);
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(2));
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kOneWayDeliveryLeak));
}

TEST(OneWayOracle, HonouredCutReportsNothingAndQuorumRoutesAround) {
  // Cut host 0 -> manager 0 in the model AND the oracle: the network must
  // drop that direction (no leak) while the C=2 quorum still assembles from
  // managers 1 and 2.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  auto& dir = s.directional();
  dir.cut_one_way(s.host_ids()[0], s.manager_ids()[0]);
  oracle.note_one_way_cut(s.host_ids()[0], s.manager_ids()[0]);

  s.grant(s.user(0), 1);
  s.run_for(Duration::seconds(5));
  bool allowed = false;
  s.check(0, s.user(0),
          [&](const proto::AccessDecision& d) { allowed = d.allowed; });
  s.run_for(Duration::seconds(10));
  EXPECT_TRUE(allowed);
  EXPECT_EQ(oracle.violation_count(), 0u)
      << (oracle.violations().empty() ? "" : oracle.violations()[0].detail);

  // Healing re-opens the direction without tripping the observer.
  oracle.note_one_way_heal(s.host_ids()[0], s.manager_ids()[0]);
  dir.heal_one_way(s.host_ids()[0], s.manager_ids()[0]);
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(5));
  EXPECT_EQ(oracle.violation_count(), 0u);
}

TEST(ChaosEngine, ReplayIsBitIdentical) {
  ChaosOptions opts;
  opts.seed = 3;
  opts.horizon = Duration::minutes(2);
  const ChaosResult a = run_chaos(opts);
  const ChaosResult b = run_chaos(opts);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.events_executed, b.events_executed);

  ChaosOptions other = opts;
  other.seed = 4;
  EXPECT_NE(run_chaos(other).trace_hash, a.trace_hash);
}

TEST(ChaosEngine, PlanGenerationIsDeterministic) {
  const auto a = chaos::make_plan(42, Duration::minutes(8));
  const auto b = chaos::make_plan(42, Duration::minutes(8));
  ASSERT_EQ(a.schedule.events.size(), b.schedule.events.size());
  for (std::size_t i = 0; i < a.schedule.events.size(); ++i) {
    EXPECT_EQ(a.schedule.events[i].at.count_nanos(),
              b.schedule.events[i].at.count_nanos());
    EXPECT_EQ(a.schedule.events[i].kind, b.schedule.events[i].kind);
  }
  EXPECT_EQ(a.scenario.seed, b.scenario.seed);
  EXPECT_EQ(a.driver_seed, b.driver_seed);
  EXPECT_NE(chaos::make_plan(43, Duration::minutes(8)).scenario.seed,
            a.scenario.seed);
}

TEST(ChaosPlan, OptionsDefaultOffKeepsPlansBitIdentical) {
  // Historical seeds (and their CHAOS.md repro lines) must survive the
  // PlanOptions extension: the default-constructed options generate exactly
  // the plan the two-argument overload always generated.
  const auto base = chaos::make_plan(42, Duration::minutes(8));
  const auto with_defaults = chaos::make_plan(42, Duration::minutes(8), {});
  ASSERT_EQ(base.schedule.events.size(), with_defaults.schedule.events.size());
  for (std::size_t i = 0; i < base.schedule.events.size(); ++i) {
    EXPECT_EQ(base.schedule.events[i].at.count_nanos(),
              with_defaults.schedule.events[i].at.count_nanos());
    EXPECT_EQ(base.schedule.events[i].kind, with_defaults.schedule.events[i].kind);
    EXPECT_EQ(base.schedule.events[i].a, with_defaults.schedule.events[i].a);
    EXPECT_EQ(base.schedule.events[i].b, with_defaults.schedule.events[i].b);
  }
  EXPECT_EQ(base.scenario.seed, with_defaults.scenario.seed);
  EXPECT_EQ(base.driver_seed, with_defaults.driver_seed);
  EXPECT_EQ(base.scenario.protocol.byzantine_slack,
            with_defaults.scenario.protocol.byzantine_slack);
}

TEST(ChaosPlan, AdversaryOptionsAppendWithoutPerturbingBaseEvents) {
  // The opt-in drawing sites sit strictly after every base site on the fault
  // stream, so turning them on appends events without re-shaping the base
  // schedule. Check a handful of seeds to cover both freeze and quorum plans.
  const auto is_base_kind = [](chaos::FaultKind k) {
    return k != chaos::FaultKind::kCutLinkOneWay &&
           k != chaos::FaultKind::kHealLinkOneWay &&
           k != chaos::FaultKind::kByzantineManager &&
           k != chaos::FaultKind::kRestoreManager;
  };
  chaos::PlanOptions opts;
  opts.byzantine = true;
  opts.byzantine_max = 1;
  opts.asymmetric = true;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 11ull, 29ull}) {
    const auto base = chaos::make_plan(seed, Duration::minutes(8));
    const auto adv = chaos::make_plan(seed, Duration::minutes(8), opts);

    std::vector<chaos::FaultEvent> kept;
    bool saw_oneway = false;
    bool saw_byz = false;
    for (const auto& e : adv.schedule.events) {
      if (is_base_kind(e.kind)) {
        kept.push_back(e);
      } else {
        saw_oneway |= e.kind == chaos::FaultKind::kCutLinkOneWay;
        saw_byz |= e.kind == chaos::FaultKind::kByzantineManager;
      }
    }
    ASSERT_EQ(kept.size(), base.schedule.events.size()) << "seed " << seed;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      EXPECT_EQ(kept[i].at.count_nanos(),
                base.schedule.events[i].at.count_nanos());
      EXPECT_EQ(kept[i].kind, base.schedule.events[i].kind);
      EXPECT_EQ(kept[i].a, base.schedule.events[i].a);
      EXPECT_EQ(kept[i].b, base.schedule.events[i].b);
    }
    EXPECT_TRUE(saw_oneway) << "seed " << seed;

    const auto& p = adv.scenario.protocol;
    if (p.freeze_enabled) {
      // §3.3 plans never inject liars: C=1 cannot out-vote one.
      EXPECT_FALSE(saw_byz) << "seed " << seed;
      EXPECT_EQ(p.byzantine_slack, 0) << "seed " << seed;
    } else {
      EXPECT_TRUE(saw_byz) << "seed " << seed;
      EXPECT_GE(p.byzantine_slack, 1) << "seed " << seed;
      EXPECT_LE(p.check_quorum, adv.scenario.managers - p.byzantine_slack)
          << "seed " << seed;
    }
  }
}

TEST(ChaosEngine, ByzantineAsymmetricReplayIsBitIdentical) {
  ChaosOptions opts;
  opts.seed = 5;
  opts.horizon = Duration::minutes(2);
  opts.plan.byzantine = true;
  opts.plan.asymmetric = true;
  const ChaosResult a = run_chaos(opts);
  const ChaosResult b = run_chaos(opts);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(ChaosSweep, ByzantineAsymmetricSeedsClean) {
  // Smoke sweep with the full adversary switched on; the 200+ seed sweep
  // lives in tools/chaos_runner, this keeps a tripwire inside ctest.
  ChaosOptions opts;
  opts.horizon = Duration::minutes(4);
  opts.plan.byzantine = true;
  opts.plan.byzantine_max = 1;
  opts.plan.asymmetric = true;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    opts.seed = seed;
    const ChaosResult r = run_chaos(opts);
    EXPECT_EQ(r.violation_count, 0u)
        << "seed " << seed << ": "
        << (r.violations.empty() ? "" : r.violations[0].detail);
  }
}

TEST(ChaosPlan, ShardedPlanAddsOneRebalanceWithoutPerturbingBase) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const chaos::ChaosPlan base =
        chaos::make_plan(seed, Duration::minutes(8));
    chaos::PlanOptions opts;
    opts.sharded = true;
    const chaos::ChaosPlan sharded =
        chaos::make_plan(seed, Duration::minutes(8), opts);

    // Singleton groups over the same shape; C clamped to the group size and
    // freeze off (silence computation needs group peers).
    EXPECT_EQ(sharded.scenario.managers, base.scenario.managers);
    EXPECT_EQ(sharded.scenario.shard_groups, sharded.scenario.managers);
    EXPECT_EQ(sharded.scenario.shard_count,
              static_cast<std::uint32_t>(4 * sharded.scenario.managers));
    EXPECT_EQ(sharded.scenario.protocol.check_quorum, 1);
    EXPECT_FALSE(sharded.scenario.protocol.freeze_enabled);

    // Exactly one rebalance, a valid leaving group, and every base event
    // still present (the extra draws happen after all base drawing sites).
    std::size_t rebalances = 0;
    for (const auto& e : sharded.schedule.events) {
      if (e.kind != chaos::FaultKind::kShardRebalance) continue;
      ++rebalances;
      EXPECT_GE(e.a, 0) << "seed " << seed;
      EXPECT_LT(e.a, sharded.scenario.managers) << "seed " << seed;
    }
    EXPECT_EQ(rebalances, 1u) << "seed " << seed;
    EXPECT_EQ(sharded.schedule.events.size(),
              base.schedule.events.size() + 1)
        << "seed " << seed;
  }
}

TEST(ChaosEngine, ShardedReplayIsBitIdentical) {
  ChaosOptions opts;
  opts.seed = 5;
  opts.horizon = Duration::minutes(4);
  opts.plan.sharded = true;
  const ChaosResult a = run_chaos(opts);
  const ChaosResult b = run_chaos(opts);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(ChaosSweep, ShardedSeedsClean) {
  // Smoke sweep over sharded deployments with a live mid-run rebalance; the
  // 100+ seed sweep lives in tools/chaos_runner --sharded, this keeps a
  // tripwire inside ctest. At least one seed must actually flip its map —
  // a sweep whose rebalances all no-op proves nothing about the handoff.
  ChaosOptions opts;
  opts.horizon = Duration::minutes(4);
  opts.plan.sharded = true;
  opts.trace = true;
  bool any_flip = false;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    opts.seed = seed;
    const ChaosResult r = run_chaos(opts);
    EXPECT_EQ(r.violation_count, 0u)
        << "seed " << seed << ": "
        << (r.violations.empty() ? "" : r.violations[0].detail);
    for (const auto& line : r.trace_lines) {
      any_flip |= line.find("shard map flipped") != std::string::npos;
    }
  }
  EXPECT_TRUE(any_flip);
}

TEST(ChaosPlan, TreePlanAddsRelayAdversaryWithoutPerturbingBase) {
  // Selecting a dissemination kind is a pure knob; only tree plans draw
  // extra sites, and those sit after every base drawing site, so the base
  // schedule survives untouched and the addition is exactly one
  // byzantine-relay window targeting a valid app host.
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const chaos::ChaosPlan base = chaos::make_plan(seed, Duration::minutes(8));

    chaos::PlanOptions coalesced_opts;
    coalesced_opts.dissemination = runtime::DisseminationKind::kCoalesced;
    const chaos::ChaosPlan coalesced =
        chaos::make_plan(seed, Duration::minutes(8), coalesced_opts);
    EXPECT_EQ(coalesced.scenario.protocol.dissemination.kind,
              runtime::DisseminationKind::kCoalesced);
    ASSERT_EQ(coalesced.schedule.events.size(), base.schedule.events.size())
        << "seed " << seed << ": coalesced drew extra fault events";

    chaos::PlanOptions tree_opts;
    tree_opts.dissemination = runtime::DisseminationKind::kTree;
    const chaos::ChaosPlan tree =
        chaos::make_plan(seed, Duration::minutes(8), tree_opts);
    EXPECT_EQ(tree.scenario.protocol.dissemination.kind,
              runtime::DisseminationKind::kTree);
    EXPECT_GE(tree.scenario.protocol.dissemination.relay_width, 2u);
    EXPECT_LE(tree.scenario.protocol.dissemination.relay_width, 4u);

    std::vector<chaos::FaultEvent> kept;
    std::size_t flips = 0;
    std::size_t restores = 0;
    for (const auto& e : tree.schedule.events) {
      if (e.kind == chaos::FaultKind::kByzantineRelay) {
        ++flips;
        EXPECT_GE(e.a, 0) << "seed " << seed;
        EXPECT_LT(e.a, tree.scenario.app_hosts) << "seed " << seed;
      } else if (e.kind == chaos::FaultKind::kRestoreRelay) {
        ++restores;
      } else {
        kept.push_back(e);
      }
    }
    EXPECT_EQ(flips, 1u) << "seed " << seed;
    EXPECT_EQ(restores, 1u) << "seed " << seed;
    ASSERT_EQ(kept.size(), base.schedule.events.size()) << "seed " << seed;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      EXPECT_EQ(kept[i].at.count_nanos(),
                base.schedule.events[i].at.count_nanos());
      EXPECT_EQ(kept[i].kind, base.schedule.events[i].kind);
      EXPECT_EQ(kept[i].a, base.schedule.events[i].a);
      EXPECT_EQ(kept[i].b, base.schedule.events[i].b);
    }
  }
}

TEST(ChaosEngine, TreeDisseminationReplayIsBitIdentical) {
  ChaosOptions opts;
  opts.seed = 5;
  opts.horizon = Duration::minutes(4);
  opts.plan.dissemination = runtime::DisseminationKind::kTree;
  const ChaosResult a = run_chaos(opts);
  const ChaosResult b = run_chaos(opts);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(ChaosSweep, TreeDisseminationSeedsClean) {
  // Relay-tree fanout under the full ambient adversity plus its own
  // Byzantine-relay window: the Te freeze bound and the delivery-leak
  // oracles must stay clean even when a relay acks everything and delivers
  // nothing. The 50+ seed sweep lives in CI via
  // `chaos_runner --dissemination tree`; this keeps a tripwire in ctest.
  ChaosOptions opts;
  opts.horizon = Duration::minutes(4);
  opts.plan.dissemination = runtime::DisseminationKind::kTree;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    opts.seed = seed;
    const ChaosResult r = run_chaos(opts);
    EXPECT_EQ(r.violation_count, 0u)
        << "seed " << seed << ": "
        << (r.violations.empty() ? "" : r.violations[0].detail);
  }
}

TEST(ChaosSweep, CoalescedSeedsClean) {
  ChaosOptions opts;
  opts.horizon = Duration::minutes(4);
  opts.plan.dissemination = runtime::DisseminationKind::kCoalesced;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    opts.seed = seed;
    const ChaosResult r = run_chaos(opts);
    EXPECT_EQ(r.violation_count, 0u)
        << "seed " << seed << ": "
        << (r.violations.empty() ? "" : r.violations[0].detail);
  }
}

TEST(ChaosEngine, ShrinkerMinimizesToFailingCore) {
  // Synthetic predicate: the run "fails" iff events 3 AND 7 are both
  // enabled. ddmin must land on exactly {3, 7}.
  int runs = 0;
  const auto fails = [&](const std::vector<int>& subset) {
    ++runs;
    bool has3 = false;
    bool has7 = false;
    for (const int e : subset) {
      has3 |= e == 3;
      has7 |= e == 7;
    }
    return has3 && has7;
  };
  const std::vector<int> core = chaos::shrink_schedule(12, fails);
  EXPECT_EQ(core, (std::vector<int>{3, 7}));
  EXPECT_LE(runs, 64);
}

TEST(ChaosEngine, ShrinkerHandlesAmbientFailure) {
  // A failure that needs no fault events at all shrinks to the empty set.
  const auto fails = [](const std::vector<int>&) { return true; };
  EXPECT_TRUE(chaos::shrink_schedule(9, fails).empty());
}

TEST(ChaosRegression, ByzantineSeedsStayFixed) {
  // Seed 110: a liar answered with an incomplete update's version, bit
  //           flipped, and the version oracle called the resulting cross-host
  //           disagreement a quorum-conflict. Fixed by exempting
  //           byzantine-tainted versions from equal-version bookkeeping
  //           (oracle over-claim, not a protocol bug).
  // Seed 228: a reconfiguration down to ONE manager, which then turned
  //           Byzantine, served a stale grant past Te — `needed` was capped
  //           at the manager-set size, abandoning the C + f floor exactly
  //           when it mattered. Fixed by refusing to decide below C + f
  //           whenever byzantine_slack > 0 (real protocol bug, found by the
  //           security-decision oracle).
  for (const std::uint64_t seed : {110ull, 228ull}) {
    ChaosOptions opts;
    opts.seed = seed;
    opts.plan.byzantine = true;
    opts.plan.byzantine_max = 1;
    opts.plan.asymmetric = true;
    const ChaosResult r = run_chaos(opts);
    EXPECT_EQ(r.violation_count, 0u)
        << "seed " << seed << ": "
        << (r.violations.empty() ? "" : r.violations[0].detail);
  }
}

TEST(ChaosRegression, SeedsThatFoundRealBugsStayFixed) {
  // Seed 7: version reissue after crash recovery (fixed by issue stamps).
  // Seed 645: unsynced manager minting from an empty store (fixed by
  //           deferring submits until the §3.4 sync completes).
  // Seed 784: initial seeding grant racing the first driver op (fixed by
  //           serializing seeding grants per user in the driver).
  for (const std::uint64_t seed : {7ull, 645ull, 784ull}) {
    ChaosOptions opts;
    opts.seed = seed;
    const ChaosResult r = run_chaos(opts);
    EXPECT_EQ(r.violation_count, 0u)
        << "seed " << seed << ": "
        << (r.violations.empty() ? "" : r.violations[0].detail);
  }
}

}  // namespace
}  // namespace wan
