// Chaos harness self-tests: the invariant oracles must catch planted
// violations (an oracle that never fires proves nothing), replays must be
// bit-identical, the shrinker must minimize, and the seeds that exposed real
// protocol bugs must stay fixed.
#include <gtest/gtest.h>

#include <vector>

#include "acl/cache.hpp"
#include "chaos/engine.hpp"
#include "chaos/fault_schedule.hpp"
#include "chaos/oracle.hpp"
#include "proto/access_controller.hpp"
#include "proto/host.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using chaos::ChaosOptions;
using chaos::ChaosResult;
using chaos::InvariantOracle;
using chaos::ViolationKind;
using proto::AccessDecision;
using proto::DecisionPath;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig oracle_config() {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 4;
  cfg.partitions = ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(60);
  cfg.protocol.clock_bound_b = 1.0;
  cfg.seed = 17;
  return cfg;
}

bool has_kind(const InvariantOracle& oracle, ViolationKind kind) {
  for (const auto& v : oracle.violations()) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(ChaosOracle, CleanScenarioReportsNothing) {
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(5));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));
  oracle.final_checks({0, 1, 2});
  EXPECT_EQ(oracle.violation_count(), 0u)
      << (oracle.violations().empty() ? "" : oracle.violations()[0].detail);
  EXPECT_GT(oracle.decisions(), 0u);
  EXPECT_GT(oracle.checkpoints(), 0u);
}

TEST(ChaosOracle, CatchesPlantedCacheTtlOverrun) {
  // An entry whose expiry limit sits further than te ahead of the local
  // clock cannot come from Fig. 3's insertion rule; the oracle must flag it.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.run_for(Duration::seconds(1));

  auto* cache = s.host(0).controller().mutable_cache(s.app());
  ASSERT_NE(cache, nullptr);
  const clk::LocalTime now = s.host(0).controller().local_now();
  cache->insert(s.user(0), acl::RightSet(acl::Right::kUse),
                now + Duration::seconds(600), acl::Version{}, now);
  oracle.checkpoint();
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kCacheTtlBound));
}

TEST(ChaosOracle, CatchesPlantedLatentRevokedEntry) {
  // A live cache entry > Te past its user's revoke quorum instant means the
  // flush + expiry machinery failed. Plant one (with a limit INSIDE the te
  // bound, so only the latent oracle can fire) and verify detection.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(2));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));  // well past Te = 60s
  ASSERT_FALSE(has_kind(oracle, ViolationKind::kLatentRevokedEntry));

  auto* cache = s.host(0).controller().mutable_cache(s.app());
  const clk::LocalTime now = s.host(0).controller().local_now();
  cache->insert(s.user(0), acl::RightSet(acl::Right::kUse),
                now + Duration::seconds(30), acl::Version{}, now);
  oracle.checkpoint();
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kLatentRevokedEntry));
  EXPECT_FALSE(has_kind(oracle, ViolationKind::kCacheTtlBound));
}

TEST(ChaosOracle, CatchesSecurityDecisionBeyondTe) {
  // End-to-end decision oracle: revoke, let Te pass, then make the host
  // allow from a planted stale cache entry. The resulting decision must be
  // classified as a security violation.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(2));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));

  auto* cache = s.host(0).controller().mutable_cache(s.app());
  const clk::LocalTime now = s.host(0).controller().local_now();
  cache->insert(s.user(0), acl::RightSet(acl::Right::kUse),
                now + Duration::seconds(30), acl::Version{}, now);
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(2));
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kSecurityDecision));
}

TEST(ChaosOracle, CatchesConflictingVersionDecisions) {
  // Quorum intersection means one update version cannot read as both grant
  // and revoke; present two crafted decisions that disagree.
  Scenario s(oracle_config());
  InvariantOracle oracle(s, {});
  AccessDecision d;
  d.app = s.app();
  d.user = s.user(0);
  d.host = s.host_ids()[0];
  d.allowed = true;
  d.path = DecisionPath::kQuorumGranted;
  d.basis_version = acl::Version{4, s.manager_ids()[0], 77};
  oracle.ingest(d);
  EXPECT_FALSE(has_kind(oracle, ViolationKind::kQuorumConflict));

  d.allowed = false;
  d.path = DecisionPath::kQuorumDenied;
  oracle.ingest(d);
  EXPECT_TRUE(has_kind(oracle, ViolationKind::kQuorumConflict));
}

TEST(ChaosOracle, DefaultAllowLeaksAreExpectedNotViolations) {
  Scenario s(oracle_config());
  InvariantOracle::Config cfg;
  cfg.default_allow_expected = true;
  InvariantOracle oracle(s, cfg);
  oracle.install();
  s.grant(s.user(0));
  s.run_for(Duration::seconds(2));
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));

  AccessDecision d;
  d.app = s.app();
  d.user = s.user(0);
  d.host = s.host_ids()[0];
  d.requested = s.scheduler().now();
  d.decided = s.scheduler().now();
  d.allowed = true;
  d.path = DecisionPath::kDefaultAllow;
  oracle.ingest(d);
  EXPECT_FALSE(has_kind(oracle, ViolationKind::kSecurityDecision));
  EXPECT_EQ(oracle.expected_leaks(), 1u);
}

TEST(ChaosEngine, ReplayIsBitIdentical) {
  ChaosOptions opts;
  opts.seed = 3;
  opts.horizon = Duration::minutes(2);
  const ChaosResult a = run_chaos(opts);
  const ChaosResult b = run_chaos(opts);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.events_executed, b.events_executed);

  ChaosOptions other = opts;
  other.seed = 4;
  EXPECT_NE(run_chaos(other).trace_hash, a.trace_hash);
}

TEST(ChaosEngine, PlanGenerationIsDeterministic) {
  const auto a = chaos::make_plan(42, Duration::minutes(8));
  const auto b = chaos::make_plan(42, Duration::minutes(8));
  ASSERT_EQ(a.schedule.events.size(), b.schedule.events.size());
  for (std::size_t i = 0; i < a.schedule.events.size(); ++i) {
    EXPECT_EQ(a.schedule.events[i].at.count_nanos(),
              b.schedule.events[i].at.count_nanos());
    EXPECT_EQ(a.schedule.events[i].kind, b.schedule.events[i].kind);
  }
  EXPECT_EQ(a.scenario.seed, b.scenario.seed);
  EXPECT_EQ(a.driver_seed, b.driver_seed);
  EXPECT_NE(chaos::make_plan(43, Duration::minutes(8)).scenario.seed,
            a.scenario.seed);
}

TEST(ChaosEngine, ShrinkerMinimizesToFailingCore) {
  // Synthetic predicate: the run "fails" iff events 3 AND 7 are both
  // enabled. ddmin must land on exactly {3, 7}.
  int runs = 0;
  const auto fails = [&](const std::vector<int>& subset) {
    ++runs;
    bool has3 = false;
    bool has7 = false;
    for (const int e : subset) {
      has3 |= e == 3;
      has7 |= e == 7;
    }
    return has3 && has7;
  };
  const std::vector<int> core = chaos::shrink_schedule(12, fails);
  EXPECT_EQ(core, (std::vector<int>{3, 7}));
  EXPECT_LE(runs, 64);
}

TEST(ChaosEngine, ShrinkerHandlesAmbientFailure) {
  // A failure that needs no fault events at all shrinks to the empty set.
  const auto fails = [](const std::vector<int>&) { return true; };
  EXPECT_TRUE(chaos::shrink_schedule(9, fails).empty());
}

TEST(ChaosRegression, SeedsThatFoundRealBugsStayFixed) {
  // Seed 7: version reissue after crash recovery (fixed by issue stamps).
  // Seed 645: unsynced manager minting from an empty store (fixed by
  //           deferring submits until the §3.4 sync completes).
  // Seed 784: initial seeding grant racing the first driver op (fixed by
  //           serializing seeding grants per user in the driver).
  for (const std::uint64_t seed : {7ull, 645ull, 784ull}) {
    ChaosOptions opts;
    opts.seed = seed;
    const ChaosResult r = run_chaos(opts);
    EXPECT_EQ(r.violation_count, 0u)
        << "seed " << seed << ": "
        << (r.violations.empty() ? "" : r.violations[0].detail);
  }
}

}  // namespace
}  // namespace wan
