// Unit tests: strong ids, RNG determinism and distribution sanity, hashing,
// ASCII table rendering.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/hash.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace wan {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  HostId h;
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(h.value(), HostId::kInvalid);
}

TEST(Ids, ValueRoundTrip) {
  UserId u(42);
  EXPECT_TRUE(u.valid());
  EXPECT_EQ(u.value(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(HostId(1), HostId(2));
  EXPECT_EQ(AppId(7), AppId(7));
  EXPECT_NE(AppId(7), AppId(8));
}

TEST(Ids, ToStringFormats) {
  EXPECT_EQ(to_string(HostId(3)), "host#3");
  EXPECT_EQ(to_string(UserId(9)), "user#9");
  EXPECT_EQ(to_string(AppId(1)), "app#1");
  EXPECT_EQ(to_string(HostId{}), "host#invalid");
}

TEST(Ids, Hashable) {
  std::unordered_set<HostId> set;
  set.insert(HostId(1));
  set.insert(HostId(2));
  set.insert(HostId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIndependence) {
  Rng a(7);
  Rng c = a.split();
  // Parent continues; child stream is distinct.
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(11);
  const double w[3] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[weighted_pick(rng, w, 3)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Hash, Fnv1aKnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(fnv1a(""), kFnvOffset);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(Hash, MixChangesWithValue) {
  EXPECT_NE(hash_mix(kFnvOffset, 1), hash_mix(kFnvOffset, 2));
}

TEST(Hash, CombineAsymmetric) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Table, RendersAlignedColumns) {
  Table t("Demo");
  t.set_header({"C", "PA"});
  t.add_row({"1", "0.50000"});
  t.add_row({"10", "1.00000"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("| C "), std::string::npos);
  EXPECT_NE(out.find("0.50000"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(0.387423, 5), "0.38742");
  EXPECT_EQ(Table::fmt(1.0, 2), "1.00");
  EXPECT_EQ(Table::fmt(std::int64_t{-7}), "-7");
}

TEST(AsciiChart, ContainsMarkersAndLegend) {
  AsciiChartSeries s1{"PA", '*', {0.1, 0.5, 1.0}};
  AsciiChartSeries s2{"PS", 'o', {1.0, 0.5, 0.1}};
  const std::string out = render_ascii_chart("Figure", {s1, s2}, 10);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("PA"), std::string::npos);
  EXPECT_NE(out.find("Figure"), std::string::npos);
}

TEST(AsciiChart, OverlapMarkedWithPlus) {
  AsciiChartSeries s1{"a", '*', {0.5}};
  AsciiChartSeries s2{"b", 'o', {0.5}};
  const std::string out = render_ascii_chart("t", {s1, s2}, 5);
  EXPECT_NE(out.find('+'), std::string::npos);
}

}  // namespace
}  // namespace wan
