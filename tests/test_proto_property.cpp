// Randomized property tests — the reproduction's strongest evidence:
//
//  1. THE Te BOUND: under random pairwise partitions, drifting clocks, packet
//     loss, and a mixed grant/revoke/access workload, no access is ever
//     allowed more than Te after a revoke's quorum instant (zero security
//     violations), across many seeds.
//  2. Snapshot PA/PS match the paper's closed forms (the §4.1 model check).
//  3. Bit-level determinism: identical seeds give identical runs.
//  4. Manager store convergence under an update storm.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/availability.hpp"
#include "chaos/engine.hpp"
#include "sim/lifecycle.hpp"
#include "workload/driver.hpp"
#include "workload/probes.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using sim::Duration;
using workload::Driver;
using workload::DriverConfig;
using workload::QuorumProbe;
using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig adversarial_config(std::uint64_t seed, double pi) {
  ScenarioConfig cfg;
  cfg.managers = 5;
  cfg.app_hosts = 3;
  cfg.users = 6;
  cfg.partitions = ScenarioConfig::Partitions::kPairwise;
  cfg.pi = pi;
  cfg.mean_down = Duration::seconds(20);
  cfg.loss = 0.02;
  cfg.drifting_clocks = true;
  cfg.protocol.clock_bound_b = 1.05;
  cfg.protocol.check_quorum = 3;
  cfg.protocol.Te = Duration::seconds(60);
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.seed = seed;
  return cfg;
}

class TeBoundProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(TeBoundProperty, NoSecurityViolationsEver) {
  const auto [seed, pi] = GetParam();
  Scenario s(adversarial_config(seed, pi));
  DriverConfig dcfg;
  dcfg.access_rate_per_host = 2.0;
  // High op rate: consecutive grant/revoke pairs for one user land on
  // different managers within a partition lifetime, which is exactly the
  // regime where a protocol without the pre-write version read suffers
  // revoke/grant inversions (regression pressure for that fix).
  dcfg.manager_ops_per_second = 0.25;
  dcfg.revoke_fraction = 0.6;
  dcfg.initially_granted = 0.5;
  Driver driver(s, dcfg, seed * 977 + 13);
  driver.start();
  s.run_for(Duration::minutes(30));
  driver.stop();
  s.run_for(Duration::minutes(2));  // drain in-flight checks

  const auto& report = s.collector().report();
  EXPECT_GT(report.total, 5000u) << "workload did not run";
  EXPECT_EQ(report.security_violations, 0u)
      << "Te bound violated with seed " << seed << " pi " << pi;
  // The protocol must actually be letting legitimate users through, too.
  EXPECT_GT(report.availability(), 0.80);
  // And denying unauthorized ones outside the grace window.
  EXPECT_GT(report.security(), 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPi, TeBoundProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.1, 0.3)));

// The same property with the availability-first policy (Fig. 4): security
// violations ARE expected now — the point of the assertion is that the
// guarantee's loss is confined to the default-allow path.
TEST(TeBoundProperty, DefaultAllowTradesSecurityKnowingly) {
  auto cfg = adversarial_config(99, 0.3);
  cfg.protocol.exhausted_policy = proto::ExhaustedPolicy::kAllow;
  cfg.protocol.max_attempts = 2;
  Scenario s(cfg);
  DriverConfig dcfg;
  dcfg.manager_ops_per_second = 0.1;
  dcfg.revoke_fraction = 0.7;
  Driver driver(s, dcfg, 4242);
  driver.start();
  s.run_for(Duration::minutes(30));
  const auto& report = s.collector().report();
  // Availability improves relative to the deny policy under the same seed...
  EXPECT_GT(report.availability(), 0.95);
  // ...and some unauthorized accesses leak through, all via default-allow.
  const auto leaked = report.security_violations + report.unauth_allowed_grace;
  EXPECT_GT(leaked, 0u);
}

// Correlated storm partitions (whole components split off) are nastier than
// independent pair failures; the bound must hold regardless.
class StormTeBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StormTeBoundProperty, NoSecurityViolationsUnderStorms) {
  ScenarioConfig cfg;
  cfg.managers = 5;
  cfg.app_hosts = 3;
  cfg.users = 6;
  cfg.partitions = ScenarioConfig::Partitions::kStorms;
  cfg.storm.mean_between_storms = Duration::minutes(2);
  cfg.storm.mean_storm_duration = Duration::seconds(50);
  cfg.storm.max_components = 3;
  cfg.drifting_clocks = true;
  cfg.protocol.clock_bound_b = 1.05;
  cfg.protocol.check_quorum = 3;
  cfg.protocol.Te = Duration::seconds(60);
  cfg.protocol.max_attempts = 2;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.seed = GetParam();
  Scenario s(cfg);
  DriverConfig dcfg;
  dcfg.manager_ops_per_second = 0.2;
  dcfg.revoke_fraction = 0.6;
  Driver driver(s, dcfg, GetParam() + 500);
  driver.start();
  s.run_for(Duration::minutes(30));
  const auto& report = s.collector().report();
  EXPECT_GT(report.total, 5000u);
  EXPECT_EQ(report.security_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StormTeBoundProperty,
                         ::testing::Values(31, 32, 33, 34));

// The exact-quorum fanout (query only C managers per attempt) changes the
// availability curve but must not touch safety.
TEST(TeBoundProperty, ExactFanoutPreservesTheBound) {
  auto cfg = adversarial_config(55, 0.25);
  cfg.protocol.fanout = proto::QueryFanout::kExactQuorum;
  Scenario s(cfg);
  DriverConfig dcfg;
  dcfg.manager_ops_per_second = 0.25;
  dcfg.revoke_fraction = 0.6;
  Driver driver(s, dcfg, 56);
  driver.start();
  s.run_for(Duration::minutes(30));
  const auto& report = s.collector().report();
  EXPECT_GT(report.total, 5000u);
  EXPECT_EQ(report.security_violations, 0u);
}

// The freeze strategy (§3.3's alternative) must uphold the same Te bound —
// by refusing to answer rather than by quorum intersection.
class FreezeTeBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FreezeTeBoundProperty, NoSecurityViolationsUnderFreeze) {
  auto cfg = adversarial_config(GetParam(), 0.15);
  cfg.protocol.freeze_enabled = true;
  cfg.protocol.Te = Duration::seconds(90);
  cfg.protocol.Ti = Duration::seconds(25);
  cfg.protocol.heartbeat_period = Duration::seconds(5);
  cfg.protocol.check_quorum = 1;  // freeze replaces quorums
  Scenario s(cfg);
  DriverConfig dcfg;
  dcfg.access_rate_per_host = 2.0;
  dcfg.manager_ops_per_second = 0.1;
  dcfg.revoke_fraction = 0.6;
  Driver driver(s, dcfg, GetParam() * 31 + 5);
  driver.start();
  s.run_for(Duration::minutes(30));

  const auto& report = s.collector().report();
  EXPECT_GT(report.total, 5000u);
  EXPECT_EQ(report.security_violations, 0u)
      << "freeze strategy violated Te with seed " << GetParam();
  // Freeze pays in availability; it must still function, just worse.
  EXPECT_GT(report.availability(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreezeTeBoundProperty,
                         ::testing::Values(11, 12, 13, 14));

// Crash/recovery churn on top of partitions: hosts and managers fail with
// exponential lifetimes (§3.4's whole machinery under stress). The bound
// must survive lost caches, lost grant tables, and recovery syncs.
class ChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnProperty, TeBoundSurvivesCrashRecoveryChurn) {
  const std::uint64_t seed = GetParam();
  Scenario s(adversarial_config(seed, 0.15));
  Rng lifecycle_rng(seed * 7919 + 3);

  std::vector<std::unique_ptr<sim::CrashRecoveryProcess>> churn;
  sim::CrashRecoveryProcess::Config life;
  life.mttf = sim::Duration::minutes(8);
  life.mttr = sim::Duration::minutes(1);
  for (int h = 0; h < s.host_count(); ++h) {
    churn.push_back(std::make_unique<sim::CrashRecoveryProcess>(
        s.scheduler(), lifecycle_rng.split(), life));
    auto* host = &s.host(h);
    churn.back()->start([host] { host->crash(); }, [host] { host->recover(); });
  }
  // Managers are sturdier (the paper assumes host failures are "relatively
  // rare"; we stress well beyond realistic MTTFs anyway).
  life.mttf = sim::Duration::minutes(15);
  for (int m = 0; m < s.manager_count(); ++m) {
    churn.push_back(std::make_unique<sim::CrashRecoveryProcess>(
        s.scheduler(), lifecycle_rng.split(), life));
    auto* mgr = &s.manager(m);
    churn.back()->start([mgr] { mgr->crash(); }, [mgr] { mgr->recover(); });
  }

  DriverConfig dcfg;
  dcfg.access_rate_per_host = 2.0;
  dcfg.manager_ops_per_second = 0.1;
  Driver driver(s, dcfg, seed + 1);
  driver.start();
  s.run_for(Duration::minutes(40));

  const auto& report = s.collector().report();
  EXPECT_GT(report.total, 3000u);
  EXPECT_EQ(report.security_violations, 0u)
      << "Te bound violated under churn with seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnProperty, ::testing::Values(21, 22, 23, 24));

class SnapshotModelMatch
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SnapshotModelMatch, ProbeMatchesClosedForm) {
  const auto [c, pi] = GetParam();
  ScenarioConfig cfg;
  cfg.managers = 10;
  cfg.app_hosts = 1;
  cfg.users = 1;
  cfg.partitions = ScenarioConfig::Partitions::kPairwise;
  cfg.pi = pi;
  cfg.mean_down = Duration::seconds(30);
  cfg.protocol.check_quorum = c;
  cfg.seed = static_cast<std::uint64_t>(c) * 31 + 7;
  Scenario s(cfg);
  QuorumProbe probe(s, c, Duration::seconds(10));
  probe.start();
  s.run_for(Duration::hours(60));
  const double pa = probe.result().pa();
  const double ps = probe.result().ps();
  EXPECT_NEAR(pa, analysis::availability_pa(10, c, pi), 0.02);
  EXPECT_NEAR(ps, analysis::security_ps(10, c, pi), 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    QuorumAndPi, SnapshotModelMatch,
    ::testing::Combine(::testing::Values(1, 3, 5, 8, 10),
                       ::testing::Values(0.1, 0.2)));

TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    Scenario s(adversarial_config(seed, 0.2));
    Driver driver(s, DriverConfig{}, 555);
    driver.start();
    s.run_for(Duration::minutes(10));
    return std::make_tuple(s.collector().report().total,
                           s.collector().report().legit_allowed,
                           s.collector().report().legit_denied,
                           s.network().stats().sent,
                           s.network().stats().delivered,
                           s.scheduler().executed_events());
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(std::get<3>(run(7)), std::get<3>(run(8)));
}

TEST(Convergence, UpdateStormLeavesAllManagersIdentical) {
  ScenarioConfig cfg;
  cfg.managers = 5;
  cfg.app_hosts = 1;
  cfg.users = 20;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(25);
  cfg.protocol.check_quorum = 3;
  cfg.seed = 21;
  Scenario s(cfg);
  Rng rng(33);
  // 200 randomly interleaved updates from random managers.
  for (int i = 0; i < 200; ++i) {
    const UserId u = s.user(static_cast<int>(rng.next_below(20)));
    const int mgr = static_cast<int>(rng.next_below(5));
    if (rng.next_bool(0.5)) {
      s.grant(u, mgr);
    } else {
      s.revoke(u, mgr);
    }
    s.run_for(Duration::millis(rng.next_below(100)));
  }
  s.run_for(Duration::minutes(2));
  const auto reference = s.manager(0).manager().store(s.app())->snapshot();
  ASSERT_FALSE(reference.empty());
  for (int m = 1; m < 5; ++m) {
    EXPECT_EQ(s.manager(m).manager().store(s.app())->snapshot(), reference)
        << "manager " << m << " diverged";
  }
}

TEST(Convergence, ConvergesThroughStorms) {
  ScenarioConfig cfg;
  cfg.managers = 4;
  cfg.app_hosts = 1;
  cfg.users = 10;
  cfg.partitions = ScenarioConfig::Partitions::kStorms;
  cfg.storm.mean_between_storms = Duration::seconds(40);
  cfg.storm.mean_storm_duration = Duration::seconds(20);
  cfg.protocol.check_quorum = 2;
  cfg.seed = 77;
  Scenario s(cfg);
  Rng rng(78);
  for (int i = 0; i < 60; ++i) {
    const UserId u = s.user(static_cast<int>(rng.next_below(10)));
    if (rng.next_bool(0.5)) {
      s.grant(u, static_cast<int>(rng.next_below(4)));
    } else {
      s.revoke(u, static_cast<int>(rng.next_below(4)));
    }
    s.run_for(Duration::seconds(rng.next_below(20)));
  }
  // Long quiet tail: persistent retransmission pushes everything through the
  // storm gaps eventually.
  s.run_for(Duration::minutes(30));
  const auto reference = s.manager(0).manager().store(s.app())->snapshot();
  for (int m = 1; m < 4; ++m) {
    EXPECT_EQ(s.manager(m).manager().store(s.app())->snapshot(), reference);
  }
}

TEST(ProtoProperty, ChaosSweepFiftySeedsZeroViolations) {
  // The full chaos harness in-process: each seed is an independent random
  // deployment (topology, quorums, Te, clock bound, loss/dup rates) driven
  // through a generated schedule of partition storms, crashes, and
  // reconfigurations, with the invariant oracles checking after every event.
  // A shorter horizon than the chaos_runner default keeps the suite quick;
  // chaos_runner --seeds 1000 covers the long-horizon sweep (and CI runs
  // a 100-seed smoke — see docs/CHAOS.md).
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    chaos::ChaosOptions opts;
    opts.seed = seed;
    opts.horizon = Duration::minutes(4);
    const chaos::ChaosResult r = chaos::run_chaos(opts);
    EXPECT_EQ(r.violation_count, 0u)
        << "seed " << seed << ": "
        << (r.violations.empty() ? "(unrecorded)" : r.violations[0].detail);
    EXPECT_GT(r.decisions, 0u) << "seed " << seed << " made no decisions";
  }
}

}  // namespace
}  // namespace wan
