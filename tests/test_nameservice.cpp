// Unit tests for the trusted name service and the TTL-caching resolver.
#include <gtest/gtest.h>

#include "nameservice/name_service.hpp"

namespace wan::ns {
namespace {

using clk::LocalTime;
using sim::Duration;

TEST(NameService, UnknownAppResolvesEmpty) {
  NameService svc;
  EXPECT_FALSE(svc.resolve(AppId(1)).has_value());
}

TEST(NameService, SetAndResolve) {
  NameService svc;
  svc.set_managers(AppId(1), {HostId(1), HostId(2)});
  const auto rec = svc.resolve(AppId(1));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->managers, (std::vector<HostId>{HostId(1), HostId(2)}));
  EXPECT_EQ(rec->version, 1u);
}

TEST(NameService, ReplaceBumpsVersion) {
  NameService svc;
  svc.set_managers(AppId(1), {HostId(1)});
  svc.set_managers(AppId(1), {HostId(2), HostId(3)});
  const auto rec = svc.resolve(AppId(1));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->version, 2u);
  EXPECT_EQ(rec->managers.size(), 2u);
}

TEST(NameService, AppsIndependent) {
  NameService svc;
  svc.set_managers(AppId(1), {HostId(1)});
  svc.set_managers(AppId(2), {HostId(2)});
  EXPECT_EQ(svc.resolve(AppId(1))->managers.front(), HostId(1));
  EXPECT_EQ(svc.resolve(AppId(2))->managers.front(), HostId(2));
}

TEST(ManagerResolver, CachesWithinTtl) {
  NameService svc;
  svc.set_managers(AppId(1), {HostId(1)});
  ManagerResolver resolver(svc, Duration::minutes(10));
  const LocalTime t0 = LocalTime::from_nanos(0);
  EXPECT_TRUE(resolver.resolve(AppId(1), t0).has_value());
  const auto before = svc.lookups();
  // Within the TTL the service is not consulted again.
  EXPECT_TRUE(resolver.resolve(AppId(1), t0 + Duration::minutes(5)).has_value());
  EXPECT_EQ(svc.lookups(), before);
  EXPECT_EQ(resolver.cache_hits(), 1u);
}

TEST(ManagerResolver, TtlExpiryTriggersRequery) {
  NameService svc;
  svc.set_managers(AppId(1), {HostId(1)});
  ManagerResolver resolver(svc, Duration::minutes(10));
  const LocalTime t0 = LocalTime::from_nanos(0);
  (void)resolver.resolve(AppId(1), t0);  // warm the cache
  // Manager set changes; resolver only notices after the TTL lapses — the
  // paper's "scheme similar to the time-based expiration" (§3.2).
  svc.set_managers(AppId(1), {HostId(7)});
  EXPECT_EQ(resolver.resolve(AppId(1), t0 + Duration::minutes(9))->managers.front(),
            HostId(1));
  EXPECT_EQ(resolver.resolve(AppId(1), t0 + Duration::minutes(10))->managers.front(),
            HostId(7));
}

TEST(ManagerResolver, UnknownAppNotCached) {
  NameService svc;
  ManagerResolver resolver(svc, Duration::minutes(10));
  const LocalTime t0 = LocalTime::from_nanos(0);
  EXPECT_FALSE(resolver.resolve(AppId(1), t0).has_value());
  svc.set_managers(AppId(1), {HostId(1)});
  // A negative result must not stick for the TTL.
  EXPECT_TRUE(resolver.resolve(AppId(1), t0 + Duration::seconds(1)).has_value());
}

TEST(ManagerResolver, ClearForcesRequery) {
  NameService svc;
  svc.set_managers(AppId(1), {HostId(1)});
  ManagerResolver resolver(svc, Duration::hours(10));
  const LocalTime t0 = LocalTime::from_nanos(0);
  (void)resolver.resolve(AppId(1), t0);  // warm the cache
  svc.set_managers(AppId(1), {HostId(2)});
  resolver.clear();  // host recovery
  EXPECT_EQ(resolver.resolve(AppId(1), t0)->managers.front(), HostId(2));
}

}  // namespace
}  // namespace wan::ns
