// Byzantine-manager hardening: a compromised manager can misreport rights it
// holds (stale or inverted answers, silence, inflated expiry periods) but
// cannot forge versions — updates are admin-signed. With byzantine_slack = f
// a host gathers C + f check responses while the update quorum stays
// M - C + 1, so every assembled check set intersects every completed update
// in at least f + 1 managers: at least one honest responder saw the freshest
// version and freshest-wins reads past the liars. These tests drive each
// defense in the AccessController (deny floor, equal-version conflict
// resolution, self-inconsistency quarantine, expiry clamp) against a real
// lying ManagerModule, plus the freeze-strategy configuration validation.
#include <gtest/gtest.h>

#include <optional>

#include "acl/cache.hpp"
#include "proto/access_controller.hpp"
#include "proto/config.hpp"
#include "proto/host.hpp"
#include "proto/manager.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using proto::ManagerModule;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig byz_config(int slack, int check_quorum = 2) {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 1;
  cfg.users = 2;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = check_quorum;
  cfg.protocol.Te = Duration::seconds(60);
  cfg.protocol.clock_bound_b = 1.0;
  cfg.protocol.byzantine_slack = slack;
  cfg.seed = 7;
  return cfg;
}

std::optional<AccessDecision> check_at(Scenario& s, int host, UserId user) {
  std::optional<AccessDecision> out;
  s.check(host, user, [&](const AccessDecision& d) { out = d; });
  s.run_for(Duration::seconds(10));
  return out;
}

TEST(ByzantineManager, StaleGrantLosesToFresherDeny) {
  // The liar freezes its store at the grant; after the revoke completes on
  // the honest majority, freshest-wins must pick the deny.
  Scenario s(byz_config(/*slack=*/1));
  ASSERT_TRUE(s.grant(s.user(0), 1));
  s.run_for(Duration::seconds(5));
  s.manager(0).manager().set_byzantine(11, ManagerModule::LieMode::kStale);
  ASSERT_TRUE(s.revoke(s.user(0), 1));
  s.run_for(Duration::seconds(5));

  const auto d = check_at(s, 0, s.user(0));
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->allowed);
}

TEST(ByzantineManager, EqualVersionConflictResolvesDenyWins) {
  // kInvert lies at the store's true version, so some responder pair reports
  // contradictory rights at the SAME version — quorum intersection makes an
  // honest pair impossible, the session must take the deny side and flag the
  // decision as conflicted.
  Scenario s(byz_config(/*slack=*/1));
  ASSERT_TRUE(s.grant(s.user(0), 1));
  s.run_for(Duration::seconds(5));
  s.manager(0).manager().set_byzantine(3, ManagerModule::LieMode::kInvert);

  const auto d = check_at(s, 0, s.user(0));
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->allowed);
  EXPECT_TRUE(d->conflicting_replies);
  EXPECT_GE(s.host(0).controller().hardening_stats().conflicting_replies, 1u);
}

TEST(ByzantineManager, SelfInconsistentManagerIsQuarantined) {
  // Between-manager conflicts cannot identify the liar; a manager that
  // contradicts ITS OWN earlier report at the same version can be blamed
  // unambiguously (honest reorderings regress versions but never flip the
  // bit a version carries) and is benched for a backoff window.
  Scenario s(byz_config(/*slack=*/0));
  ASSERT_TRUE(s.grant(s.user(0), 1));
  s.run_for(Duration::seconds(5));

  s.manager(0).manager().set_byzantine(3, ManagerModule::LieMode::kInvert);
  const auto d1 = check_at(s, 0, s.user(0));  // records (v, deny) for mgr 0
  ASSERT_TRUE(d1.has_value());

  s.manager(0).manager().restore_honest();
  const auto d2 = check_at(s, 0, s.user(0));  // mgr 0 now claims (v, grant)
  ASSERT_TRUE(d2.has_value());
  EXPECT_TRUE(d2->allowed);  // honest majority still assembles the quorum

  const auto& stats = s.host(0).controller().hardening_stats();
  EXPECT_GE(stats.self_inconsistent_replies, 1u);
  EXPECT_GE(stats.quarantines_imposed, 1u);
  EXPECT_TRUE(s.host(0).controller().manager_quarantined(s.manager_ids()[0]));
}

TEST(ByzantineManager, RevokeNotifyFloorDowngradesStaleGrant) {
  // A RevokeNotify tells the host a revoke at version v completed; any later
  // grant claim at or below v contradicts that completed update. With
  // byzantine_slack on, the claim is downgraded to a deny vote at the floor
  // version (the responder still counts — discarding would starve quorums).
  Scenario s(byz_config(/*slack=*/1, /*check_quorum=*/1));
  ASSERT_TRUE(s.grant(s.user(0), 1));
  s.run_for(Duration::seconds(5));
  const auto warm = check_at(s, 0, s.user(0));  // enters the grant table
  ASSERT_TRUE(warm.has_value());
  ASSERT_TRUE(warm->allowed);

  s.manager(0).manager().set_byzantine(11, ManagerModule::LieMode::kStale);
  ASSERT_TRUE(s.revoke(s.user(0), 1));  // RevokeNotify raises the deny floor
  s.run_for(Duration::seconds(5));

  const auto d = check_at(s, 0, s.user(0));
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->allowed);
  EXPECT_GE(s.host(0).controller().hardening_stats().stale_replies_discarded,
            1u);
}

TEST(ByzantineManager, AdvertisedExpiryIsClampedToConfiguredPeriod) {
  // kHugeExpiry advertises a 64x expiry period; honouring it would keep a
  // cache entry alive far past te and break the Te bound on the next revoke.
  // The host clamps to its own configured period.
  Scenario s(byz_config(/*slack=*/0, /*check_quorum=*/1));
  ASSERT_TRUE(s.grant(s.user(0), 1));
  s.run_for(Duration::seconds(5));
  s.manager(0).manager().set_byzantine(5, ManagerModule::LieMode::kHugeExpiry);

  const auto d = check_at(s, 0, s.user(0));
  ASSERT_TRUE(d.has_value());
  ASSERT_TRUE(d->allowed);

  const acl::AclCache* cache = s.host(0).controller().cache(s.app());
  ASSERT_NE(cache, nullptr);
  const auto entry = cache->peek(s.user(0));
  ASSERT_TRUE(entry.has_value());
  EXPECT_LE(entry->limit - s.host(0).controller().local_now(),
            s.config().protocol.expiry_period());
}

TEST(ByzantineManager, SlackRefusesToDecideBelowQuorumFloor) {
  // A manager set smaller than C + f can never prove a fresh reading: a
  // reconfiguration down to one (possibly compromised) manager must make
  // checks exhaust to policy rather than let that manager decide alone.
  ScenarioConfig cfg = byz_config(/*slack=*/1, /*check_quorum=*/1);
  cfg.managers = 1;
  Scenario s(cfg);
  ASSERT_TRUE(s.grant(s.user(0), 0));  // update quorum M - C + 1 = 1 completes
  s.run_for(Duration::seconds(5));

  const auto d = check_at(s, 0, s.user(0));
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->allowed);
  EXPECT_EQ(d->path, proto::DecisionPath::kUnverifiableDeny);
}

TEST(ByzantineManager, AdminSubmitsParkUntilRestoredHonest) {
  // Submits THROUGH a compromised manager park exactly like submits on an
  // unsynced one; remediation releases them and the update completes.
  Scenario s(byz_config(/*slack=*/0));
  s.manager(0).manager().set_byzantine(9);
  ASSERT_TRUE(s.grant(s.user(0), 0));
  s.run_for(Duration::seconds(5));
  EXPECT_FALSE(
      s.manager(1).manager().store(s.app())->check(s.user(0), acl::Right::kUse));

  s.manager(0).manager().restore_honest();
  s.run_for(Duration::seconds(5));
  EXPECT_TRUE(
      s.manager(1).manager().store(s.app())->check(s.user(0), acl::Right::kUse));
}

TEST(ByzantineManager, CrashClearsCompromise) {
  // crash()/recover() models reimaging: the replica comes back honest (and
  // resyncs state from its peers before serving).
  Scenario s(byz_config(/*slack=*/0));
  s.manager(0).manager().set_byzantine(13);
  ASSERT_TRUE(s.manager(0).manager().byzantine());
  s.manager(0).crash();
  EXPECT_FALSE(s.manager(0).manager().byzantine());
  s.manager(0).recover();
  s.run_for(Duration::seconds(5));
  EXPECT_FALSE(s.manager(0).manager().byzantine());
  EXPECT_TRUE(s.manager(0).manager().synced(s.app()));
}

// --- freeze-strategy configuration validation (§3.3) ------------------------
// Te is a budget split between Ti and te; configurations that leave no te, or
// whose heartbeats cannot outrun the silence threshold, are operator errors
// that must fail fast with an explanation, not degrade silently.

TEST(FreezeConfigDeath, TiConsumingTheWholeBudgetAborts) {
  proto::ProtocolConfig c;
  c.freeze_enabled = true;
  c.Te = Duration::seconds(60);
  c.Ti = Duration::seconds(60);
  c.heartbeat_period = Duration::seconds(5);
  EXPECT_DEATH(c.validate(), "born expired");
}

TEST(FreezeConfigDeath, HeartbeatSlowerThanTiAborts) {
  proto::ProtocolConfig c;
  c.freeze_enabled = true;
  c.Te = Duration::seconds(60);
  c.Ti = Duration::seconds(20);
  c.heartbeat_period = Duration::seconds(20);
  EXPECT_DEATH(c.validate(), "freezes permanently");
}

TEST(FreezeConfig, ValidSplitPasses) {
  proto::ProtocolConfig c;
  c.freeze_enabled = true;
  c.Te = Duration::seconds(60);
  c.Ti = Duration::seconds(20);
  c.heartbeat_period = Duration::seconds(5);
  c.validate();  // must not abort
  EXPECT_GT(c.expiry_period(), Duration{});
  EXPECT_LT(c.expiry_period(), c.Te);
}

}  // namespace
}  // namespace wan
