// Cross-backend conformance: the three real-thread fabric backends —
// LoopbackFabric (in-process), UdpTransport (thread-per-direction sockets),
// and ReactorTransport (epoll + recvmmsg/sendmmsg) — must be behaviorally
// indistinguishable above the Fabric seam. The suite proves it three ways:
//
//   1. A model-checked seed sweep: 100 seeded op scripts (grants, revokes,
//      access checks) run on every backend; each script's decision log must
//      equal the prediction of a tiny reference model of the protocol AND be
//      identical across backends. The model is exact because every op
//      barriers on its completion callback and every revoke settles (polls
//      until the revocation is globally visible) before the script proceeds:
//      update quorum is M-C+1 = 2 of 3, checks take the 2 freshest distinct
//      responses, so at most one stale manager can appear in any response
//      pair and freshest-version-wins makes the outcome a pure function of
//      the op history.
//   2. The canonical scripted sequence from test_runtime.cpp (whose expected
//      log is pinned against SimEnv) replayed over real UDP sockets on both
//      socket backends.
//   3. Adverse-network runs: with the deterministic fault plan injecting
//      loss/duplication/reordering at the fabric layer, revocation still
//      converges — and far inside the Te staleness bound — while the
//      injected_loss drop counter proves the faults actually fired.
//
// Socket backends run single-process: every node id routes to the
// transport's own port (add_peer self-wiring), so frames make a real kernel
// round trip through the shared socket and the full encode/decode path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "proto/host.hpp"
#include "proto/wire.hpp"
#include "runtime/backend.hpp"
#include "runtime/env_options.hpp"
#include "runtime/socket_base.hpp"
#include "runtime/threaded_env.hpp"
#include "shard/shard_map.hpp"
#include "util/rng.hpp"

namespace wan::runtime {
namespace {

using sim::Duration;

constexpr AppId kApp{1};

bool eventually(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::uint64_t drop_count(const char* reason) {
  return obs::Registry::global()
      .counter(std::string("wan_udp_drops_total{reason=\"") + reason + "\"}")
      .value();
}

proto::ProtocolConfig conformance_config() {
  proto::ProtocolConfig config;
  config.check_quorum = 2;
  config.Te = Duration::minutes(2);
  return config;
}

/// One whole deployment — managers (3 flat, 2 per group sharded), 2 app
/// hosts, each on its own ThreadedEnv — over whichever fabric backend the
/// kind names. Socket backends self-wire every node id to the transport's
/// bound port. `shard_groups` 0 = the flat reference deployment; 1 = the
/// one-shard sharded vocabulary (single_group map installed everywhere, must
/// behave bit-identically to flat); >= 2 = a real multi-shard partition.
struct Deployment {
  std::unique_ptr<Fabric> fabric;
  SocketTransport* socket = nullptr;  ///< non-null for udp/reactor
  ns::NameService names;
  auth::KeyRegistry keys;
  shard::ShardMap map;  ///< empty when flat
  std::vector<std::unique_ptr<ThreadedEnv>> envs;
  std::vector<std::unique_ptr<proto::ManagerHost>> managers;
  std::vector<std::unique_ptr<proto::AppHost>> hosts;
  std::size_t host_env_base = 3;

  explicit Deployment(BackendKind kind, bool reliable = false,
                      std::uint32_t shard_groups = 0,
                      DisseminationKind dissemination =
                          DisseminationKind::kUnicast) {
    proto::register_wire_messages();
    const int n_managers =
        shard_groups >= 2 ? static_cast<int>(2 * shard_groups) : 3;
    std::vector<HostId> manager_ids;
    for (int i = 0; i < n_managers; ++i) {
      manager_ids.push_back(HostId(static_cast<std::uint32_t>(i)));
    }
    const std::vector<HostId> host_ids{HostId(100), HostId(101)};
    host_env_base = manager_ids.size();
    if (shard_groups == 1) {
      map = shard::ShardMap::single_group(manager_ids);
    } else if (shard_groups >= 2) {
      ShardTopologyOptions topo;
      topo.groups = shard_groups;
      topo.shards = 8;
      map = make_shard_map(topo, manager_ids);
    }

    EnvOptions opts;
    opts.backend = kind;
    opts.listen = "127.0.0.1:0";
    if (kind == BackendKind::kLoopback) opts.delay = Duration::millis(1);
    if (reliable) {
      opts.reliability.enabled = true;
      opts.reliability.initial_rto = Duration::millis(20);
      opts.reliability.max_rto = Duration::millis(200);
      opts.reliability.retry_budget = 50;
      opts.reliability.jitter_seed = 13;
    }
    std::string error;
    fabric = make_fabric(opts, &error);
    EXPECT_NE(fabric, nullptr) << error;
    if (fabric == nullptr) return;  // tests ASSERT on d.fabric before use
    socket = fabric_as_socket(fabric.get());
    if (socket != nullptr) {
      const NodeAddress self{"127.0.0.1", socket->local_port()};
      for (const HostId id : manager_ids) EXPECT_TRUE(socket->add_peer(id, self));
      for (const HostId id : host_ids) EXPECT_TRUE(socket->add_peer(id, self));
    }

    proto::ProtocolConfig config = conformance_config();
    config.dissemination.kind = dissemination;
    for (std::size_t i = 0; i < manager_ids.size() + host_ids.size(); ++i) {
      envs.push_back(std::make_unique<ThreadedEnv>(*fabric));
    }
    for (std::size_t i = 0; i < manager_ids.size(); ++i) {
      managers.push_back(std::make_unique<proto::ManagerHost>(
          manager_ids[i], *envs[i], clk::LocalClock::perfect(), config));
    }
    names.set_managers(kApp, manager_ids);
    if (!map.empty()) names.set_shard_map(kApp, map);
    for (std::size_t i = 0; i < managers.size(); ++i) {
      envs[i]->run_sync([&, i] {
        // A sharded manager's Managers(A) is its own group; the flat and
        // one-shard deployments use the whole set.
        const auto g =
            map.empty() ? std::nullopt : map.group_index_of(manager_ids[i]);
        managers[i]->manager().manage_app(
            kApp, g.has_value() ? map.group(*g) : manager_ids);
        if (!map.empty()) managers[i]->manager().set_shard_map(kApp, map);
      });
    }
    for (std::size_t i = 0; i < host_ids.size(); ++i) {
      hosts.push_back(std::make_unique<proto::AppHost>(
          host_ids[i], *envs[host_env_base + i], clk::LocalClock::perfect(),
          names, keys, config));
      envs[host_env_base + i]->run_sync([&, i] {
        hosts[i]->controller().register_app(
            kApp, [](UserId, const std::string& p) { return p; });
      });
    }
  }

  /// Index of the manager an update for `user` must be submitted at: the
  /// first member of the key's owner group (managers are id == index here).
  /// Flat and one-shard deployments route everything to manager 0, matching
  /// the reference scripts.
  [[nodiscard]] int route(UserId user) const {
    if (map.empty() || map.trivial()) return 0;
    return static_cast<int>(map.group_for(kApp, user).front().value());
  }

  ~Deployment() {
    // Socket shutdown (or stop_all) silences every loop and I/O thread
    // before the protocol modules those threads call into are destroyed.
    if (socket != nullptr) {
      socket->shutdown();
    } else if (fabric != nullptr) {
      fabric->stop_all();
    }
  }

  void on_manager(int i, std::function<void()> fn) {
    envs[static_cast<std::size_t>(i)]->run_sync(std::move(fn));
  }
  void on_host(int i, std::function<void()> fn) {
    envs[host_env_base + static_cast<std::size_t>(i)]->run_sync(std::move(fn));
  }
};

/// Submits one ACL update at manager `mgr` and blocks until its quorum
/// outcome callback fires. Shared state is shared_ptr-owned so a timed-out
/// callback landing late cannot touch a dead stack frame.
[[nodiscard]] bool barrier_update(Deployment& d, int mgr, acl::Op op,
                                  UserId user, int timeout_ms = 10000) {
  auto done = std::make_shared<std::atomic<bool>>(false);
  d.on_manager(mgr, [&d, mgr, op, user, done] {
    d.managers[static_cast<std::size_t>(mgr)]->manager().submit_update(
        kApp, op, user, acl::Right::kUse,
        [done](const proto::UpdateOutcome&) { done->store(true); });
  });
  return eventually([done] { return done->load(); }, timeout_ms);
}

/// Runs one access check on host `host` and returns its decision label
/// ("allow/cache-hit", "deny/quorum-denied", ...), or "timeout".
[[nodiscard]] std::string barrier_check(Deployment& d, int host, UserId user,
                                        int timeout_ms = 10000) {
  struct Slot {
    std::mutex mu;
    bool done = false;
    std::string label;
  };
  auto slot = std::make_shared<Slot>();
  d.on_host(host, [&d, host, user, slot] {
    d.hosts[static_cast<std::size_t>(host)]->controller().check_access(
        kApp, user, [slot](const proto::AccessDecision& dec) {
          const std::lock_guard<std::mutex> lock(slot->mu);
          slot->label = std::string(dec.allowed ? "allow/" : "deny/") +
                        to_cstring(dec.path);
          slot->done = true;
        });
  });
  if (!eventually(
          [slot] {
            const std::lock_guard<std::mutex> lock(slot->mu);
            return slot->done;
          },
          timeout_ms)) {
    return "timeout";
  }
  const std::lock_guard<std::mutex> lock(slot->mu);
  return slot->label;
}

/// After a revoke quorum completes, polls unrecorded checks on every host
/// until each denies. A deny proves the host's cache entry is gone (the
/// cache-hit path is synchronous and holds only grants), so subsequent
/// script steps observe a settled world with no grace-sleep guesswork.
[[nodiscard]] bool settle_revoked(Deployment& d, UserId user,
                                  int timeout_ms = 15000) {
  for (int host = 0; host < 2; ++host) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::string label = barrier_check(d, host, user, timeout_ms);
      if (label.rfind("deny/", 0) == 0) break;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return true;
}

// ------------------------------------------------ model-checked seed sweep

struct Op {
  enum Kind { kCheck, kGrant, kRevoke } kind = kCheck;
  int host = 0;      ///< checks only
  int user_idx = 0;  ///< 0..2 -> UserId 7..9
};

struct SeedScript {
  std::vector<Op> ops;
  std::vector<std::string> expected;  ///< model-predicted log, one per op
};

UserId user_of(int idx) { return UserId(static_cast<std::uint32_t>(7 + idx)); }

/// Generates the seeded op list and, alongside it, the reference model's
/// predicted log. The model is three booleans per user (granted) plus one
/// per host x user (cached): checks on ungranted users quorum-deny, on
/// granted-and-cached users cache-hit, otherwise quorum-grant (which
/// populates the cache); revokes clear the grant and every cache entry
/// (execution enforces that with the settle step).
SeedScript make_script(std::uint64_t seed) {
  Rng rng{seed};
  SeedScript script;
  bool granted[3] = {false, false, false};
  bool cached[2][3] = {{false, false, false}, {false, false, false}};
  const int n_ops = 8 + static_cast<int>(rng.next_u64() % 5);
  for (int i = 0; i < n_ops; ++i) {
    const std::uint64_t roll = rng.next_u64() % 4;
    const int u = static_cast<int>(rng.next_u64() % 3);
    Op op;
    op.user_idx = u;
    if (roll <= 1) {
      op.kind = Op::kCheck;
      op.host = static_cast<int>(rng.next_u64() % 2);
      const char* label = !granted[u]          ? "deny/quorum-denied"
                          : cached[op.host][u] ? "allow/cache-hit"
                                               : "allow/quorum-granted";
      if (granted[u]) cached[op.host][u] = true;
      script.expected.push_back("check h" + std::to_string(op.host) + " u" +
                                std::to_string(u) + " = " + label);
    } else if (roll == 2) {
      op.kind = Op::kGrant;
      granted[u] = true;
      script.expected.push_back("grant u" + std::to_string(u));
    } else {
      op.kind = Op::kRevoke;
      granted[u] = false;
      cached[0][u] = cached[1][u] = false;
      script.expected.push_back("revoke u" + std::to_string(u));
    }
    script.ops.push_back(op);
  }
  return script;
}

std::vector<std::string> run_script_on(Deployment& d,
                                       const SeedScript& script) {
  std::vector<std::string> log;
  for (const Op& op : script.ops) {
    const UserId user = user_of(op.user_idx);
    switch (op.kind) {
      case Op::kCheck:
        log.push_back("check h" + std::to_string(op.host) + " u" +
                      std::to_string(op.user_idx) + " = " +
                      barrier_check(d, op.host, user));
        break;
      case Op::kGrant:
        log.push_back(barrier_update(d, d.route(user), acl::Op::kAdd, user)
                          ? "grant u" + std::to_string(op.user_idx)
                          : "grant-timeout u" + std::to_string(op.user_idx));
        break;
      case Op::kRevoke: {
        std::string entry = "revoke u" + std::to_string(op.user_idx);
        if (!barrier_update(d, d.route(user), acl::Op::kRevoke, user)) {
          entry += " (quorum-timeout)";
        } else if (!settle_revoked(d, user)) {
          entry += " (settle-timeout)";
        }
        log.push_back(entry);
        break;
      }
    }
  }
  return log;
}

void run_conformance_seeds(std::uint64_t first_seed, int count) {
  const BackendKind kinds[] = {BackendKind::kLoopback, BackendKind::kUdp,
                               BackendKind::kReactor};
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    const SeedScript script = make_script(seed);
    std::vector<std::vector<std::string>> logs;
    for (const BackendKind kind : kinds) {
      Deployment d(kind);
      ASSERT_NE(d.fabric, nullptr);
      logs.push_back(run_script_on(d, script));
      EXPECT_EQ(logs.back(), script.expected)
          << "seed " << seed << " on backend " << to_cstring(kind)
          << " diverged from the reference model";
    }
    // The headline assertion: identical protocol outcomes on every backend.
    EXPECT_EQ(logs[0], logs[1]) << "seed " << seed << ": loopback vs udp";
    EXPECT_EQ(logs[0], logs[2]) << "seed " << seed << ": loopback vs reactor";
  }
}

// 100 seeds, sharded four ways so `ctest -j` runs them concurrently.
TEST(Conformance, SeedSweepShard0) { run_conformance_seeds(1, 25); }
TEST(Conformance, SeedSweepShard1) { run_conformance_seeds(26, 25); }
TEST(Conformance, SeedSweepShard2) { run_conformance_seeds(51, 25); }
TEST(Conformance, SeedSweepShard3) { run_conformance_seeds(76, 25); }

/// The collective dissemination strategies (docs/ARCHITECTURE.md) change
/// which frames carry a revocation, not what the protocol decides. Replays
/// the same 100 seeded scripts with RevokeBatch coalescing and with relay
/// trees: the decision log must equal the reference model entry for entry.
/// Unicast on all three backends is the sweep above; the collective kinds
/// run on the loopback fabric, where the strategies exercise the identical
/// code path they use on the socket backends.
void run_dissemination_seeds(DisseminationKind kind, std::uint64_t first_seed,
                             int count) {
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    const SeedScript script = make_script(seed);
    Deployment d(BackendKind::kLoopback, /*reliable=*/false,
                 /*shard_groups=*/0, kind);
    ASSERT_NE(d.fabric, nullptr);
    EXPECT_EQ(run_script_on(d, script), script.expected)
        << "seed " << seed << " with " << to_cstring(kind)
        << " dissemination diverged from the reference model";
  }
}

TEST(Conformance, CoalescedSeedSweepShard0) {
  run_dissemination_seeds(DisseminationKind::kCoalesced, 1, 25);
}
TEST(Conformance, CoalescedSeedSweepShard1) {
  run_dissemination_seeds(DisseminationKind::kCoalesced, 26, 25);
}
TEST(Conformance, CoalescedSeedSweepShard2) {
  run_dissemination_seeds(DisseminationKind::kCoalesced, 51, 25);
}
TEST(Conformance, CoalescedSeedSweepShard3) {
  run_dissemination_seeds(DisseminationKind::kCoalesced, 76, 25);
}
TEST(Conformance, TreeSeedSweepShard0) {
  run_dissemination_seeds(DisseminationKind::kTree, 1, 25);
}
TEST(Conformance, TreeSeedSweepShard1) {
  run_dissemination_seeds(DisseminationKind::kTree, 26, 25);
}
TEST(Conformance, TreeSeedSweepShard2) {
  run_dissemination_seeds(DisseminationKind::kTree, 51, 25);
}
TEST(Conformance, TreeSeedSweepShard3) {
  run_dissemination_seeds(DisseminationKind::kTree, 76, 25);
}

// ------------------------------------------------------- canonical script

// The scripted sequence test_runtime.cpp pins against SimEnv and the
// loopback fabric, replayed over real kernel sockets on both socket
// backends. The revoke lands at a different manager than the grant, so the
// deny at the end additionally proves cross-manager update propagation.
TEST(Conformance, CanonicalScriptMatchesOnSocketBackends) {
  for (const BackendKind kind : {BackendKind::kUdp, BackendKind::kReactor}) {
    SCOPED_TRACE(to_cstring(kind));
    Deployment d(kind);
    ASSERT_NE(d.fabric, nullptr);
    const UserId alice(7);
    const UserId mallory(8);

    std::vector<std::string> log;
    log.push_back(barrier_check(d, 0, alice));
    ASSERT_TRUE(barrier_update(d, 0, acl::Op::kAdd, alice));
    log.push_back(barrier_check(d, 1, alice));
    log.push_back(barrier_check(d, 1, alice));
    log.push_back(barrier_check(d, 0, mallory));
    ASSERT_TRUE(barrier_update(d, 1, acl::Op::kRevoke, alice));
    ASSERT_TRUE(settle_revoked(d, alice));
    log.push_back(barrier_check(d, 1, alice));

    const std::vector<std::string> expected{
        "deny/quorum-denied", "allow/quorum-granted", "allow/cache-hit",
        "deny/quorum-denied", "deny/quorum-denied",
    };
    EXPECT_EQ(log, expected);
  }
}

// --------------------------------------------------- sharded deployments

// A one-shard sharded deployment — the whole key space owned by one group,
// expressed through ShardMap::single_group and installed on the name
// service and every manager — must be bit-identical to the flat reference:
// same model-predicted decision log, seed for seed, on all three backends.
TEST(Conformance, OneShardShardedMatchesFlatReference) {
  for (const BackendKind kind :
       {BackendKind::kLoopback, BackendKind::kUdp, BackendKind::kReactor}) {
    SCOPED_TRACE(to_cstring(kind));
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const SeedScript script = make_script(seed);
      Deployment d(kind, /*reliable=*/false, /*shard_groups=*/1);
      ASSERT_NE(d.fabric, nullptr);
      ASSERT_TRUE(d.map.trivial());
      EXPECT_EQ(run_script_on(d, script), script.expected)
          << "seed " << seed << ": one-shard sharded diverged from reference";
    }
  }
}

// A real multi-shard partition (2 groups x 2 managers, 8 shards) runs the
// same seeded scripts with updates routed to each key's owner group. The
// reference model is shard-agnostic — quorum semantics are per group — so
// the decision logs must still match it exactly.
TEST(Conformance, MultiShardSeedSweepMatchesReference) {
  for (const BackendKind kind :
       {BackendKind::kLoopback, BackendKind::kUdp, BackendKind::kReactor}) {
    SCOPED_TRACE(to_cstring(kind));
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const SeedScript script = make_script(seed);
      Deployment d(kind, /*reliable=*/false, /*shard_groups=*/2);
      ASSERT_NE(d.fabric, nullptr);
      ASSERT_FALSE(d.map.trivial());
      EXPECT_EQ(run_script_on(d, script), script.expected)
          << "seed " << seed << ": multi-shard diverged from reference";
    }
  }
}

// The canonical script on the multi-shard deployment, with the revoke
// submitted at the OTHER member of the owner group: the final deny proves
// update propagation within the group and owner-routed queries across
// groups (mallory's check may land on a different group than alice's).
TEST(Conformance, MultiShardCanonicalScriptMatchesReferenceDecisions) {
  for (const BackendKind kind :
       {BackendKind::kLoopback, BackendKind::kUdp, BackendKind::kReactor}) {
    SCOPED_TRACE(to_cstring(kind));
    Deployment d(kind, /*reliable=*/false, /*shard_groups=*/2);
    ASSERT_NE(d.fabric, nullptr);
    const UserId alice(7);
    const UserId mallory(8);
    const auto& owner_group = d.map.group_for(kApp, alice);
    ASSERT_EQ(owner_group.size(), 2u);
    const int grantor = static_cast<int>(owner_group[0].value());
    const int revoker = static_cast<int>(owner_group[1].value());

    std::vector<std::string> log;
    log.push_back(barrier_check(d, 0, alice));
    ASSERT_TRUE(barrier_update(d, grantor, acl::Op::kAdd, alice));
    log.push_back(barrier_check(d, 1, alice));
    log.push_back(barrier_check(d, 1, alice));
    log.push_back(barrier_check(d, 0, mallory));
    ASSERT_TRUE(barrier_update(d, revoker, acl::Op::kRevoke, alice));
    ASSERT_TRUE(settle_revoked(d, alice));
    log.push_back(barrier_check(d, 1, alice));

    const std::vector<std::string> expected{
        "deny/quorum-denied", "allow/quorum-granted", "allow/cache-hit",
        "deny/quorum-denied", "deny/quorum-denied",
    };
    EXPECT_EQ(log, expected);
  }
}

// ------------------------------------------------- adverse-network runs

// With deterministic loss/duplication/reordering injected at the fabric
// layer, the protocol still converges: a revoke becomes globally visible
// well inside the Te staleness bound, and the injected_loss counter proves
// frames really were dropped along the way. Duplication exercises update
// and notification idempotence; reordering holds one frame back per pair.
TEST(Conformance, RevocationConvergesUnderInjectedFaults) {
  for (const BackendKind kind : {BackendKind::kUdp, BackendKind::kReactor}) {
    SCOPED_TRACE(to_cstring(kind));
    Deployment d(kind);
    ASSERT_NE(d.fabric, nullptr);
    ASSERT_NE(d.socket, nullptr);
    FaultPlan plan;
    plan.seed = 7;
    plan.loss = 0.15;
    plan.duplicate = 0.1;
    plan.reorder = 0.1;
    d.socket->set_fault_plan(plan);
    const std::uint64_t lost_before = drop_count("injected_loss");

    const UserId alice(7);
    ASSERT_TRUE(barrier_update(d, 0, acl::Op::kAdd, alice, 30000));
    // Under loss a single check may need protocol retries; poll to allow.
    ASSERT_TRUE(eventually(
        [&] { return barrier_check(d, 0, alice, 5000).rfind("allow/", 0) == 0; },
        30000));

    const auto revoke_start = std::chrono::steady_clock::now();
    ASSERT_TRUE(barrier_update(d, 0, acl::Op::kRevoke, alice, 30000));
    ASSERT_TRUE(settle_revoked(d, alice, 30000));
    const auto elapsed = std::chrono::steady_clock::now() - revoke_start;

    // Te is the contract: revocation latency stayed far inside the bound.
    EXPECT_LT(elapsed, std::chrono::minutes(2));
    // And the adverse network was real, not a no-op plan.
    EXPECT_GT(drop_count("injected_loss"), lost_before);
  }
}

// -------------------------------- reliable delivery under sustained loss

// The PR's acceptance bar: with the reliability layer on and 10%+ injected
// loss on a real socket backend, the seeded scripts still match the
// reference model *exactly* — zero lost reliable messages, zero double
// deliveries (a dup would flip a cache-hit label) — and the counters prove
// both the loss and the recovery were real. Sharded per backend so the two
// sweeps run concurrently under `ctest -j`.
void run_reliable_loss_seeds(BackendKind kind, std::uint64_t first_seed,
                             int count) {
  const std::uint64_t lost_before = drop_count("injected_loss");
  const std::uint64_t retx_before = obs::Registry::global()
                                        .counter("wan_retransmits_total")
                                        .value();
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    const SeedScript script = make_script(seed);
    Deployment d(kind, /*reliable=*/true);
    ASSERT_NE(d.fabric, nullptr);
    ASSERT_NE(d.socket, nullptr);
    FaultPlan plan;
    plan.seed = seed;
    plan.loss = 0.10;
    d.socket->set_fault_plan(plan);
    EXPECT_EQ(run_script_on(d, script), script.expected)
        << "seed " << seed << " on reliable " << to_cstring(kind)
        << " under 10% loss diverged from the reference model";
  }
  // The adverse network fired, and retransmission is what papered over it.
  EXPECT_GT(drop_count("injected_loss"), lost_before);
  EXPECT_GT(obs::Registry::global().counter("wan_retransmits_total").value(),
            retx_before);
}

TEST(Conformance, ReliableSweepUnderLossUdp) {
  run_reliable_loss_seeds(BackendKind::kUdp, 1, 6);
}

TEST(Conformance, ReliableSweepUnderLossReactor) {
  run_reliable_loss_seeds(BackendKind::kReactor, 1, 6);
}

}  // namespace
}  // namespace wan::runtime
