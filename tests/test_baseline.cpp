// Behavioural tests for the three baseline designs — and the contrasts with
// the paper's protocol that §3/§4.2 claim.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "baseline/baseline_system.hpp"
#include "net/network.hpp"
#include "runtime/sim_env.hpp"
#include "sim/scheduler.hpp"

namespace wan::baseline {
namespace {

using sim::Duration;
using sim::TimePoint;

struct BaselineFixture : ::testing::Test {
  sim::Scheduler sched;
  std::shared_ptr<net::ScriptedPartitions> partitions =
      std::make_shared<net::ScriptedPartitions>();
  std::unique_ptr<net::Network> net;
  std::unique_ptr<runtime::SimEnv> env;
  std::unique_ptr<BaselineSystem> sys;
  std::vector<HostId> mgr_ids{HostId(0), HostId(1), HostId(2)};
  std::vector<HostId> host_ids{HostId(100), HostId(101)};

  void build(Kind kind) {
    net::Network::Config ncfg;
    ncfg.latency = std::make_unique<net::ConstantLatency>(Duration::millis(10));
    ncfg.partitions = partitions;
    net = std::make_unique<net::Network>(sched, Rng(1), std::move(ncfg));
    env = std::make_unique<runtime::SimEnv>(*net);
    BaselineConfig cfg;
    cfg.kind = kind;
    cfg.managers = 3;
    cfg.app_hosts = 2;
    cfg.gossip_period = Duration::seconds(10);
    sys = std::make_unique<BaselineSystem>(*env, AppId(1), mgr_ids,
                                           host_ids, cfg);
    net->start();
  }

  bool run_check(int host, UserId user,
                 Duration window = Duration::seconds(30)) {
    std::optional<bool> allowed;
    sys->check(host, user, [&](const BaselineDecision& d) { allowed = d.allowed; });
    sched.run_until(sched.now() + window);
    EXPECT_TRUE(allowed.has_value());
    return allowed.value_or(false);
  }
};

// ---------------------------------------------------------- full replication

TEST_F(BaselineFixture, FullReplicationChecksAreLocalAndInstant) {
  build(Kind::kFullReplication);
  sys->grant(UserId(1));
  sched.run_until(sched.now() + Duration::seconds(5));

  std::optional<BaselineDecision> d;
  sys->check(0, UserId(1), [&](const BaselineDecision& dec) { d = dec; });
  ASSERT_TRUE(d.has_value());  // synchronous: no scheduler run needed
  EXPECT_TRUE(d->allowed);
  EXPECT_EQ(d->latency().count_nanos(), 0);
}

TEST_F(BaselineFixture, FullReplicationPropagatesToAllReplicas) {
  build(Kind::kFullReplication);
  sys->grant(UserId(1));
  sched.run_until(sched.now() + Duration::seconds(5));
  for (int h = 0; h < 2; ++h) {
    EXPECT_TRUE(sys->host_store(h).check(UserId(1), acl::Right::kUse));
  }
  sys->revoke(UserId(1));
  sched.run_until(sched.now() + Duration::seconds(5));
  EXPECT_FALSE(run_check(0, UserId(1)));
}

TEST_F(BaselineFixture, FullReplicationPartitionedHostStaysStaleForever) {
  build(Kind::kFullReplication);
  sys->grant(UserId(1));
  sched.run_until(sched.now() + Duration::seconds(5));
  // Host 0 loses contact with everything; the revoke never arrives.
  partitions->isolate(host_ids[0], {mgr_ids[0], mgr_ids[1], mgr_ids[2],
                                    host_ids[1]});
  sys->revoke(UserId(1));
  sched.run_until(sched.now() + Duration::hours(10));
  // No expiry in this design: ten hours later the stale replica still grants.
  EXPECT_TRUE(run_check(0, UserId(1)));
  // The connected replica is correct.
  EXPECT_FALSE(run_check(1, UserId(1)));
}

TEST_F(BaselineFixture, FullReplicationRetransmitsThroughPartitions) {
  build(Kind::kFullReplication);
  partitions->isolate(host_ids[0], {mgr_ids[0], mgr_ids[1], mgr_ids[2]});
  sys->grant(UserId(1));
  sched.run_until(sched.now() + Duration::seconds(10));
  EXPECT_FALSE(sys->host_store(0).check(UserId(1), acl::Right::kUse));
  partitions->heal_all();
  sched.run_until(sched.now() + Duration::seconds(10));
  EXPECT_TRUE(sys->host_store(0).check(UserId(1), acl::Right::kUse));
}

// --------------------------------------------------------------- local only

TEST_F(BaselineFixture, LocalOnlyFindsInfoAtIssuingManager) {
  build(Kind::kLocalOnly);
  sys->grant(UserId(1));  // applied at manager 0 only
  sched.run_until(sched.now() + Duration::seconds(1));
  EXPECT_TRUE(sys->manager_store(0).check(UserId(1), acl::Right::kUse));
  EXPECT_FALSE(sys->manager_store(1).check(UserId(1), acl::Right::kUse));
  EXPECT_TRUE(run_check(0, UserId(1)));
}

TEST_F(BaselineFixture, LocalOnlyTakesFreshestAcrossManagers) {
  build(Kind::kLocalOnly);
  sys->grant(UserId(1));   // manager 0 (round-robin)
  sys->revoke(UserId(1));  // manager 1 — fresher version
  sched.run_until(sched.now() + Duration::seconds(1));
  EXPECT_FALSE(run_check(0, UserId(1)));
}

TEST_F(BaselineFixture, LocalOnlyUnreachableIssuerHidesTheUpdate) {
  build(Kind::kLocalOnly);
  sys->grant(UserId(1));  // lives only at manager 0
  sched.run_until(sched.now() + Duration::seconds(1));
  partitions->cut_link(host_ids[0], mgr_ids[0]);
  // The only copy is unreachable: the check sees no info and denies.
  EXPECT_FALSE(run_check(0, UserId(1)));
}

TEST_F(BaselineFixture, LocalOnlyWaitsForAllManagers) {
  build(Kind::kLocalOnly);
  sys->grant(UserId(1));
  sched.run_until(sched.now() + Duration::seconds(1));
  net->reset_stats();
  EXPECT_TRUE(run_check(0, UserId(1)));
  // One query per manager: the O(M) check cost of this design point.
  EXPECT_EQ(net->stats().sent_by_type().at("QueryRequest"), 3u);
}

// ------------------------------------------------------ eventual consistency

TEST_F(BaselineFixture, EventualGossipConvergesManagers) {
  build(Kind::kEventual);
  sys->grant(UserId(1));  // manager 0 only, initially
  sched.run_until(sched.now() + Duration::seconds(1));
  EXPECT_FALSE(sys->manager_store(2).check(UserId(1), acl::Right::kUse));
  sched.run_until(sched.now() + Duration::minutes(5));  // many gossip rounds
  for (int m = 0; m < 3; ++m) {
    EXPECT_TRUE(sys->manager_store(m).check(UserId(1), acl::Right::kUse));
  }
}

TEST_F(BaselineFixture, EventualCheckAsksOneManager) {
  build(Kind::kEventual);
  sys->grant(UserId(1));
  sched.run_until(sched.now() + Duration::minutes(5));
  net->reset_stats();
  EXPECT_TRUE(run_check(0, UserId(1)));
  EXPECT_EQ(net->stats().sent_by_type().at("QueryRequest"), 1u);
}

TEST_F(BaselineFixture, EventualStaleManagerGrantsRevokedUserUnboundedly) {
  build(Kind::kEventual);
  sys->grant(UserId(1));
  sched.run_until(sched.now() + Duration::minutes(5));  // converged

  // All manager-manager gossip paths go dark, then the revoke is issued:
  // the other replicas never learn of it and there is NO time bound on the
  // staleness — the paper's §4.2 contrast with the [23]-style design.
  partitions->cut_link(mgr_ids[0], mgr_ids[1]);
  partitions->cut_link(mgr_ids[0], mgr_ids[2]);
  partitions->cut_link(mgr_ids[1], mgr_ids[2]);
  std::optional<TimePoint> local_effect;
  sys->revoke(UserId(1), [&](TimePoint t) { local_effect = t; });
  sched.run_until(sched.now() + Duration::seconds(1));
  ASSERT_TRUE(local_effect.has_value());

  sched.run_until(sched.now() + Duration::hours(10));
  // Exactly one manager knows; the other two grant a revoked user ten hours
  // later. The paper's protocol would have locked the user out within Te.
  int stale_grants = 0;
  for (int m = 0; m < 3; ++m) {
    if (sys->manager_store(m).check(UserId(1), acl::Right::kUse)) ++stale_grants;
  }
  EXPECT_EQ(stale_grants, 2);
}

TEST_F(BaselineFixture, EventualFailsOverAcrossManagers) {
  build(Kind::kEventual);
  sys->grant(UserId(1));
  sched.run_until(sched.now() + Duration::minutes(5));
  // First manager in the rotation is unreachable; the check retries others.
  partitions->cut_link(host_ids[0], mgr_ids[0]);
  EXPECT_TRUE(run_check(0, UserId(1)));
}

TEST_F(BaselineFixture, EventualAllManagersUnreachableDenies) {
  build(Kind::kEventual);
  sys->grant(UserId(1));
  sched.run_until(sched.now() + Duration::minutes(5));
  partitions->isolate(host_ids[0], {mgr_ids[0], mgr_ids[1], mgr_ids[2]});
  EXPECT_FALSE(run_check(0, UserId(1)));
}

TEST(BaselineNames, Distinct) {
  EXPECT_STREQ(to_cstring(Kind::kFullReplication), "full-replication");
  EXPECT_STREQ(to_cstring(Kind::kLocalOnly), "local-only");
  EXPECT_STREQ(to_cstring(Kind::kEventual), "eventual-consistency");
}

}  // namespace
}  // namespace wan::baseline
