// Host and manager failure/recovery behaviour (§3.4): volatile caches,
// user failover, manager recovery sync, revoke-retransmission cutoff, and the
// "logical partition" a crashed manager's lost grant table creates.
#include <gtest/gtest.h>

#include <optional>

#include "acl/store.hpp"
#include "net/partition_model.hpp"
#include "proto/manager.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using proto::DecisionPath;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig recovery_config() {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 4;
  cfg.partitions = ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(60);
  cfg.protocol.clock_bound_b = 1.0;
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.seed = 11;
  return cfg;
}

AccessDecision run_check(Scenario& s, int host, UserId user,
                         Duration window = Duration::seconds(10)) {
  std::optional<AccessDecision> result;
  s.check(host, user, [&](const AccessDecision& d) { result = d; });
  s.run_for(window);
  EXPECT_TRUE(result.has_value());
  return result.value_or(AccessDecision{});
}

TEST(ProtoRecovery, HostRecoveryStartsWithEmptyCache) {
  Scenario s(recovery_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0), Duration::seconds(2));
  ASSERT_EQ(s.host(0).controller().cache(s.app())->size(), 1u);

  s.host(0).crash();
  s.run_for(Duration::seconds(10));
  s.host(0).recover();
  EXPECT_EQ(s.host(0).controller().cache(s.app())->size(), 0u);

  // "refilled using the normal algorithm": the next check goes to managers.
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kQuorumGranted);
}

TEST(ProtoRecovery, CrashedHostIgnoresChecks) {
  Scenario s(recovery_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.host(0).crash();
  bool called = false;
  s.host(0).controller().check_access(
      s.app(), s.user(0), [&](const AccessDecision&) { called = true; });
  s.run_for(Duration::seconds(10));
  // The crashed host makes no decisions; the session died with it.
  EXPECT_FALSE(called);
}

TEST(ProtoRecovery, UserAgentFailsOverToSurvivingHost) {
  Scenario s(recovery_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.host(0).crash();

  std::optional<proto::InvokeResult> result;
  s.agent(0).invoke(s.app(), {s.host_ids()[0], s.host_ids()[1]}, "x",
                    [&](const proto::InvokeResult& r) { result = r; });
  s.run_for(Duration::seconds(30));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(result->hosts_tried, 2);  // "simply have to locate a new host"
}

TEST(ProtoRecovery, ChecksSurviveSingleManagerCrash) {
  Scenario s(recovery_config());  // C = 2 of M = 3
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.manager(0).crash();
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kQuorumGranted);
}

TEST(ProtoRecovery, ManagerRecoverySyncsStateFromPeers) {
  Scenario s(recovery_config());
  s.manager(0).crash();
  // Updates complete among the survivors (update quorum 2).
  s.grant(s.user(0), 1);
  s.run_for(Duration::seconds(5));
  EXPECT_EQ(s.manager(0).manager().store(s.app())->register_count(), 0u);

  s.manager(0).recover();
  s.run_for(Duration::seconds(10));
  EXPECT_TRUE(s.manager(0).manager().synced(s.app()));
  EXPECT_TRUE(s.manager(0).manager().store(s.app())->check(s.user(0),
                                                           acl::Right::kUse));
}

TEST(ProtoRecovery, RecoveringManagerRefusesQueriesUntilSynced) {
  auto cfg = recovery_config();
  cfg.protocol.check_quorum = 1;  // a single manager answer would suffice
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));

  s.manager(0).crash();
  s.run_for(Duration::seconds(2));
  // Partition the recovering manager from its peers: sync cannot complete.
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[1]);
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[2]);
  s.manager(0).recover();
  s.run_for(Duration::seconds(5));
  EXPECT_FALSE(s.manager(0).manager().synced(s.app()));

  // Host 0 can only reach the unsynced manager: every attempt times out.
  s.scripted().cut_link(s.host_ids()[0], s.manager_ids()[1]);
  s.scripted().cut_link(s.host_ids()[0], s.manager_ids()[2]);
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kUnverifiableDeny);

  // Healing lets the sync finish (retransmitted SyncRequests) and queries
  // resume with correct, merged state.
  s.scripted().heal_all();
  s.run_for(Duration::seconds(10));
  EXPECT_TRUE(s.manager(0).manager().synced(s.app()));
  EXPECT_TRUE(run_check(s, 0, s.user(0)).allowed);
}

TEST(ProtoRecovery, RevokeRetransmissionStopsAtExpiryDeadline) {
  Scenario s(recovery_config());  // Te = 60s, revoke retransmit 2s
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0), Duration::seconds(2));  // grant tables populated

  // The host becomes unreachable; RevokeNotify can never be delivered.
  for (const HostId m : s.manager_ids()) {
    s.scripted().cut_link(s.host_ids()[0], m);
  }
  s.revoke(s.user(0));
  s.run_for(Duration::seconds(120));  // two full Te periods
  const auto sent_at_2te = s.network().stats().sent_by_type().at("RevokeNotify");

  s.run_for(Duration::seconds(120));
  const auto sent_later = s.network().stats().sent_by_type().at("RevokeNotify");
  // "it can stop resending the message when the access right would have
  // expired": no RevokeNotify traffic after the deadline passed.
  EXPECT_EQ(sent_later, sent_at_2te);
  // And it genuinely retransmitted while the deadline was live.
  EXPECT_GT(sent_at_2te, 3u);
}

TEST(ProtoRecovery, ManagerCrashLosesGrantTable) {
  // §3.4: "a failed manager m will essentially create a logical partition
  // since no other manager is aware of application hosts that cached access
  // control information based on interactions with m."
  auto cfg = recovery_config();
  cfg.protocol.fanout = proto::QueryFanout::kExactQuorum;
  cfg.protocol.check_quorum = 2;
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0), Duration::seconds(2));
  ASSERT_FALSE(
      s.manager(0).manager().granted_hosts(s.app(), s.user(0)).empty());

  s.manager(0).crash();
  s.run_for(Duration::seconds(2));
  s.manager(0).recover();
  s.run_for(Duration::seconds(10));
  // The ACL state resynced, but the grant table is gone — revocations issued
  // now cannot be forwarded to host 0 by m0; only expiry protects us.
  EXPECT_TRUE(s.manager(0).manager().synced(s.app()));
  EXPECT_TRUE(s.manager(0).manager().granted_hosts(s.app(), s.user(0)).empty());
}

TEST(ProtoRecovery, HostCrashDropsCacheEvenWithoutRevoke) {
  // Crash + recovery must not resurrect cached rights.
  Scenario s(recovery_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0), Duration::seconds(2));
  s.revoke(s.user(0));
  // Crash before the RevokeNotify can arrive.
  s.host(0).crash();
  s.run_for(Duration::seconds(10));
  s.host(0).recover();
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d.allowed);  // fresh check sees the revoked state
}

TEST(ProtoRecovery, VersionReissueAfterCrashConverges) {
  // Pinned regression (chaos seed 7): with C == 1, a manager whose update
  // partially disseminated before it crashed can recover from the one peer
  // that MISSED the update, and its next operation re-mints the same
  // (counter, origin) pair. The version issue stamp (acl/version.hpp) must
  // make the reissue compare strictly newer, or the stores never converge —
  // half the managers keep the zombie grant forever.
  auto cfg = recovery_config();
  cfg.protocol.check_quorum = 1;  // version read completes from self alone
  Scenario s(cfg);
  auto& parts = s.scripted();
  const HostId m0 = s.manager_ids()[0];
  const HostId m2 = s.manager_ids()[2];

  // The grant reaches manager 1 only: manager 2 is unreachable, and the
  // update quorum (M - C + 1 = 3) never completes, so retransmission is the
  // sole dissemination path — and it dies with the issuer.
  parts.cut_link(m0, m2);
  s.grant(s.user(0), 0);
  s.run_for(Duration::seconds(2));
  ASSERT_TRUE(s.manager(1).manager().store(s.app())->check(s.user(0),
                                                           acl::Right::kUse));
  ASSERT_FALSE(s.manager(2).manager().store(s.app())->check(s.user(0),
                                                            acl::Right::kUse));

  s.manager(0).crash();
  s.run_for(Duration::seconds(1));
  // Recovery syncs from manager 2 (manager 1 is now unreachable): the
  // recovered store does not contain the half-spread grant.
  parts.heal_link(m0, m2);
  parts.cut_link(m0, s.manager_ids()[1]);
  s.manager(0).recover();
  s.run_for(Duration::seconds(5));
  ASSERT_TRUE(s.manager(0).manager().synced(s.app()));
  ASSERT_FALSE(s.manager(0).manager().store(s.app())->check(s.user(0),
                                                            acl::Right::kUse));

  // The revoke's version read (self only) re-uses the grant's counter; only
  // the stamp orders it after the lost grant.
  s.revoke(s.user(0), 0);
  s.run_for(Duration::seconds(2));
  parts.heal_all();
  s.run_for(Duration::seconds(30));

  for (int m = 0; m < 3; ++m) {
    EXPECT_FALSE(s.manager(m).manager().store(s.app())->check(
        s.user(0), acl::Right::kUse))
        << "manager " << m << " kept the zombie grant";
  }
}

TEST(ProtoRecovery, UnsyncedManagerDefersSubmits) {
  // Pinned regression (chaos seed 645): a recovering manager that cannot
  // complete its §3.4 sync must not issue operations either — with C == 1
  // its version read would complete against its own empty store and mint a
  // version that loses the LWW race to every completed update, turning the
  // revoke into a silent no-op everywhere.
  auto cfg = recovery_config();
  cfg.protocol.check_quorum = 1;
  Scenario s(cfg);
  auto& parts = s.scripted();
  const HostId m0 = s.manager_ids()[0];

  s.grant(s.user(0), 1);
  s.run_for(Duration::seconds(5));  // full dissemination to all three
  ASSERT_TRUE(s.manager(0).manager().store(s.app())->check(s.user(0),
                                                           acl::Right::kUse));

  s.manager(0).crash();
  s.run_for(Duration::seconds(1));
  parts.cut_link(m0, s.manager_ids()[1]);
  parts.cut_link(m0, s.manager_ids()[2]);
  s.manager(0).recover();
  s.run_for(Duration::seconds(5));
  ASSERT_FALSE(s.manager(0).manager().synced(s.app()));

  // Submitted while unsynced: parked, not minted.
  s.revoke(s.user(0), 0);
  s.run_for(Duration::seconds(2));
  EXPECT_EQ(s.manager(0).manager().inflight_updates(s.app()), 0u);

  // Once the partition heals, the sync completes and the parked revoke is
  // issued with a proper version floor — it must win everywhere.
  parts.heal_all();
  s.run_for(Duration::seconds(30));
  ASSERT_TRUE(s.manager(0).manager().synced(s.app()));
  for (int m = 0; m < 3; ++m) {
    EXPECT_FALSE(s.manager(m).manager().store(s.app())->check(
        s.user(0), acl::Right::kUse))
        << "manager " << m << " still grants after the deferred revoke";
  }
}

TEST(ProtoRecovery, SingleManagerDeploymentRecoversEmpty) {
  auto cfg = recovery_config();
  cfg.managers = 1;
  cfg.protocol.check_quorum = 1;
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  EXPECT_TRUE(run_check(s, 0, s.user(0), Duration::seconds(2)).allowed);

  s.manager(0).crash();
  s.run_for(Duration::seconds(2));
  s.manager(0).recover();
  s.run_for(Duration::seconds(5));
  // No peers to sync from: the degenerate case restarts with an empty store
  // (documented in manager.hpp); the cached entry at the host survives until
  // expiry, after which access ends.
  EXPECT_TRUE(s.manager(0).manager().synced(s.app()));
  s.run_for(Duration::seconds(61));
  EXPECT_FALSE(run_check(s, 0, s.user(0)).allowed);
}

}  // namespace
}  // namespace wan
