// Unit + property tests for drifting clocks and the te = Te/b expiry bound.
#include <gtest/gtest.h>

#include "clock/local_clock.hpp"
#include "util/rng.hpp"

namespace wan::clk {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(LocalTime, Arithmetic) {
  const LocalTime t = LocalTime::from_nanos(1000);
  EXPECT_EQ((t + Duration::nanos(500)).nanos(), 1500);
  EXPECT_EQ((t - Duration::nanos(200)).nanos(), 800);
  EXPECT_EQ(((t + Duration::seconds(1)) - t).count_nanos(),
            Duration::seconds(1).count_nanos());
  EXPECT_LT(t, t + Duration::nanos(1));
}

TEST(LocalClock, PerfectClockTracksRealTime) {
  const LocalClock c = LocalClock::perfect();
  const TimePoint real = TimePoint::from_nanos(123456789);
  EXPECT_EQ(c.now(real).nanos(), 123456789);
}

TEST(LocalClock, RateScalesElapsedTime) {
  const LocalClock c = LocalClock::with_rate(0.5);  // half speed
  const LocalTime a = c.now(TimePoint::from_nanos(0));
  const LocalTime b = c.now(TimePoint::from_nanos(1'000'000'000));
  EXPECT_EQ((b - a).count_nanos(), 500'000'000);
}

TEST(LocalClock, OffsetShiftsReadings) {
  const LocalClock c = LocalClock::with_rate(1.0, 42);
  EXPECT_EQ(c.now(TimePoint::from_nanos(0)).nanos(), 42);
}

TEST(LocalClock, RealForLocalInvertsRate) {
  const LocalClock c = LocalClock::with_rate(0.5);
  EXPECT_DOUBLE_EQ(c.real_for_local(Duration::seconds(1)).to_seconds(), 2.0);
}

TEST(ExpiryPeriod, PerfectClockBound) {
  EXPECT_EQ(local_expiry_period(Duration::seconds(100), 1.0).count_nanos(),
            Duration::seconds(100).count_nanos());
}

TEST(ExpiryPeriod, ScalesDownWithB) {
  const Duration te = local_expiry_period(Duration::seconds(100), 1.25);
  EXPECT_DOUBLE_EQ(te.to_seconds(), 80.0);
}

// The paper's safety argument: for ANY admissible clock (rate >= 1/b), an
// entry cached for te = Te/b local units expires within Te real time.
class ExpiryBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExpiryBoundProperty, RealExpiryNeverExceedsTe) {
  Rng rng(GetParam());
  const double b = rng.next_uniform(1.0, 1.5);
  const Duration Te = Duration::from_seconds(rng.next_uniform(1.0, 600.0));
  const Duration te = local_expiry_period(Te, b);
  for (int i = 0; i < 50; ++i) {
    const LocalClock clock = LocalClock::sample(rng, b);
    // Clock rate is within the admissible band.
    EXPECT_GE(clock.rate(), 1.0 / b - 1e-12);
    // Real time to measure te local units never exceeds Te.
    const double real_expiry = clock.real_for_local(te).to_seconds();
    EXPECT_LE(real_expiry, Te.to_seconds() + 1e-6)
        << "rate=" << clock.rate() << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpiryBoundProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(LocalClock, SampleRespectsOffsetRange) {
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const LocalClock c = LocalClock::sample(rng, 1.1);
    const auto offset = c.now(TimePoint::from_nanos(0)).nanos();
    EXPECT_LE(std::abs(offset), 3'600'000'000'000LL);
  }
}

// Monotonicity: a clock never runs backwards.
TEST(LocalClock, Monotone) {
  Rng rng(5);
  const LocalClock c = LocalClock::sample(rng, 1.2);
  LocalTime prev = c.now(TimePoint::from_nanos(0));
  for (std::int64_t ns = 1; ns <= 10; ++ns) {
    const LocalTime cur = c.now(TimePoint::from_nanos(ns * 1'000'000));
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace wan::clk
