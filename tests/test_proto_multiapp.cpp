// Multi-application deployments, wired against the raw module API (no
// Scenario convenience): "Access control of A is assumed to be independent
// of other applications" (§3.1). One manager set may serve several
// applications; hosts run several applications behind one controller; all
// ACL state, caches, and grant tables stay per-application.
#include <gtest/gtest.h>

#include <optional>

#include "auth/credentials.hpp"
#include "nameservice/name_service.hpp"
#include "net/network.hpp"
#include "proto/host.hpp"
#include "runtime/sim_env.hpp"
#include "sim/scheduler.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using sim::Duration;

struct MultiAppFixture : ::testing::Test {
  sim::Scheduler sched;
  net::Network net{sched, Rng(5),
                   [] {
                     net::Network::Config cfg;
                     cfg.latency = std::make_unique<net::ConstantLatency>(
                         Duration::millis(10));
                     return cfg;
                   }()};
  runtime::SimEnv env{net};
  ns::NameService names;
  auth::KeyRegistry keys;
  proto::ProtocolConfig config = [] {
    proto::ProtocolConfig cfg;
    cfg.check_quorum = 2;
    cfg.Te = Duration::minutes(2);
    return cfg;
  }();

  AppId wiki{1};
  AppId payroll{2};
  std::vector<HostId> wiki_managers{HostId(0), HostId(1), HostId(2)};
  std::vector<HostId> payroll_managers{HostId(2), HostId(3), HostId(4)};

  std::vector<std::unique_ptr<proto::ManagerHost>> managers;
  std::unique_ptr<proto::AppHost> host;
  UserId alice{100};

  void SetUp() override {
    names.set_managers(wiki, wiki_managers);
    names.set_managers(payroll, payroll_managers);
    for (std::uint32_t i = 0; i < 5; ++i) {
      managers.push_back(std::make_unique<proto::ManagerHost>(
          HostId(i), env, clk::LocalClock::perfect(), config));
    }
    // Manager 2 serves BOTH applications.
    for (const HostId id : wiki_managers) {
      managers[id.value()]->manager().manage_app(wiki, wiki_managers);
    }
    for (const HostId id : payroll_managers) {
      managers[id.value()]->manager().manage_app(payroll, payroll_managers);
    }
    host = std::make_unique<proto::AppHost>(HostId(50), env, clk::LocalClock::perfect(), names,
                                            keys, config);
    host->controller().register_app(
        wiki, [](UserId, const std::string&) { return std::string("wiki"); });
    host->controller().register_app(payroll, [](UserId, const std::string&) {
      return std::string("payroll");
    });
    net.start();
  }

  std::optional<AccessDecision> check(AppId app, UserId user) {
    std::optional<AccessDecision> d;
    host->controller().check_access(app, user,
                                    [&](const AccessDecision& dec) { d = dec; });
    sched.run_until(sched.now() + Duration::seconds(10));
    return d;
  }

  void grant(AppId app, int mgr, UserId user) {
    managers[static_cast<std::size_t>(mgr)]->manager().submit_update(
        app, acl::Op::kAdd, user, acl::Right::kUse);
    sched.run_until(sched.now() + Duration::seconds(5));
  }
  void revoke(AppId app, int mgr, UserId user) {
    managers[static_cast<std::size_t>(mgr)]->manager().submit_update(
        app, acl::Op::kRevoke, user, acl::Right::kUse);
    sched.run_until(sched.now() + Duration::seconds(5));
  }
};

TEST_F(MultiAppFixture, RightsAreScopedToTheApplication) {
  grant(wiki, 0, alice);
  const auto wiki_d = check(wiki, alice);
  const auto payroll_d = check(payroll, alice);
  ASSERT_TRUE(wiki_d.has_value());
  ASSERT_TRUE(payroll_d.has_value());
  EXPECT_TRUE(wiki_d->allowed);
  EXPECT_FALSE(payroll_d->allowed);
}

TEST_F(MultiAppFixture, SharedManagerKeepsStoresSeparate) {
  grant(wiki, 2, alice);     // issued at the shared manager
  grant(payroll, 2, alice);  // and for the other app too
  const auto* wiki_store = managers[2]->manager().store(wiki);
  const auto* payroll_store = managers[2]->manager().store(payroll);
  ASSERT_NE(wiki_store, nullptr);
  ASSERT_NE(payroll_store, nullptr);
  EXPECT_TRUE(wiki_store->check(alice, acl::Right::kUse));
  EXPECT_TRUE(payroll_store->check(alice, acl::Right::kUse));

  revoke(payroll, 3, alice);
  EXPECT_TRUE(managers[2]->manager().store(wiki)->check(alice, acl::Right::kUse));
  EXPECT_FALSE(
      managers[2]->manager().store(payroll)->check(alice, acl::Right::kUse));
}

TEST_F(MultiAppFixture, RevokeInOneAppLeavesOtherCacheIntact) {
  grant(wiki, 0, alice);
  grant(payroll, 3, alice);
  EXPECT_TRUE(check(wiki, alice)->allowed);
  EXPECT_TRUE(check(payroll, alice)->allowed);
  ASSERT_EQ(host->controller().cache(wiki)->size(), 1u);
  ASSERT_EQ(host->controller().cache(payroll)->size(), 1u);

  revoke(wiki, 1, alice);
  sched.run_until(sched.now() + Duration::seconds(5));
  EXPECT_EQ(host->controller().cache(wiki)->size(), 0u);
  EXPECT_EQ(host->controller().cache(payroll)->size(), 1u);
  EXPECT_FALSE(check(wiki, alice)->allowed);
  EXPECT_TRUE(check(payroll, alice)->allowed);
}

TEST_F(MultiAppFixture, ManagersIgnoreAppsTheyDoNotManage) {
  // Manager 4 manages only payroll; a wiki query to it gets no response, so
  // a host that can only reach non-wiki managers cannot assemble a quorum.
  grant(wiki, 0, alice);
  const auto* store = managers[4]->manager().store(wiki);
  EXPECT_EQ(store, nullptr);
}

TEST_F(MultiAppFixture, PerAppVersionSpacesAreIndependent) {
  for (int i = 0; i < 3; ++i) grant(wiki, i % 3, alice);
  grant(payroll, 3, alice);
  const auto wiki_v =
      managers[2]->manager().store(wiki)->state(alice, acl::Right::kUse);
  const auto pay_v =
      managers[2]->manager().store(payroll)->state(alice, acl::Right::kUse);
  ASSERT_TRUE(wiki_v.has_value());
  ASSERT_TRUE(pay_v.has_value());
  // payroll saw a single update; wiki saw three.
  EXPECT_EQ(pay_v->version.counter, 1u);
  EXPECT_GE(wiki_v->version.counter, 3u);
}

TEST_F(MultiAppFixture, SharedManagerCrashRecoversBothApps) {
  grant(wiki, 0, alice);
  grant(payroll, 3, alice);
  managers[2]->crash();
  sched.run_until(sched.now() + Duration::seconds(2));
  managers[2]->recover();
  sched.run_until(sched.now() + Duration::seconds(10));
  EXPECT_TRUE(managers[2]->manager().synced(wiki));
  EXPECT_TRUE(managers[2]->manager().synced(payroll));
  EXPECT_TRUE(managers[2]->manager().store(wiki)->check(alice, acl::Right::kUse));
  EXPECT_TRUE(
      managers[2]->manager().store(payroll)->check(alice, acl::Right::kUse));
}

}  // namespace
}  // namespace wan
