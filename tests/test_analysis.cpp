// Golden tests: the analytic model must reproduce the paper's published
// five-decimal numbers (Tables 1 and 2) digit-for-digit, plus unit and
// property tests for the heterogeneous/correlated extensions and the advisor.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "analysis/advisor.hpp"
#include "analysis/availability.hpp"
#include "analysis/binomial.hpp"
#include "analysis/heterogeneous.hpp"
#include "analysis/overhead_model.hpp"
#include "util/rng.hpp"

namespace wan::analysis {
namespace {

// Five-decimal comparison matching the paper's table precision. Tolerance is
// one ulp of the printed representation (1e-5): the paper truncates at least
// one half-way value (PA(M=6,C=2,Pi=0.1) = 0.9999450 printed as 0.99994), so
// exact round-half comparison would be over-strict.
void expect_5dp(double actual, double expected) {
  EXPECT_NEAR(actual, expected, 1.0e-5) << "expected " << expected;
}

TEST(Binomial, ChooseValues) {
  EXPECT_NEAR(std::exp(log_choose(10, 5)), 252.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_choose(10, 10)), 1.0, 1e-12);
}

TEST(Binomial, PmfSumsToOne) {
  for (const double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    double total = 0.0;
    for (int k = 0; k <= 20; ++k) total += binomial_pmf(20, k, p);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Binomial, TailEdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_at_least(10, 0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_at_least(10, 11, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_at_least(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_at_least(10, 1, 0.0), 0.0);
}

TEST(Binomial, TailIsMonotoneInK) {
  for (int k = 1; k <= 10; ++k) {
    EXPECT_LE(binomial_at_least(10, k, 0.7), binomial_at_least(10, k - 1, 0.7));
  }
}

// ---- Paper Table 1: M = 10, Pi = 0.1 -------------------------------------
struct T1Row {
  int c;
  double pa, ps;
};

constexpr T1Row kTable1Pi01[] = {
    {1, 1.00000, 0.38742}, {2, 1.00000, 0.77484}, {3, 1.00000, 0.94703},
    {4, 0.99999, 0.99167}, {5, 0.99985, 0.99911}, {6, 0.99837, 0.99994},
    {7, 0.98720, 1.00000}, {8, 0.92981, 1.00000}, {9, 0.73610, 1.00000},
    {10, 0.34868, 1.00000},
};

constexpr T1Row kTable1Pi02[] = {
    {1, 1.00000, 0.13422}, {2, 1.00000, 0.43621}, {3, 0.99992, 0.73820},
    {4, 0.99914, 0.91436}, {5, 0.99363, 0.98042}, {6, 0.96721, 0.99693},
    {7, 0.87913, 0.99969}, {8, 0.67780, 0.99998}, {9, 0.37581, 1.00000},
    {10, 0.10737, 1.00000},
};

TEST(PaperGolden, Table1Pi01) {
  for (const auto& row : kTable1Pi01) {
    expect_5dp(availability_pa(10, row.c, 0.1), row.pa);
    expect_5dp(security_ps(10, row.c, 0.1), row.ps);
  }
}

TEST(PaperGolden, Table1Pi02) {
  for (const auto& row : kTable1Pi02) {
    expect_5dp(availability_pa(10, row.c, 0.2), row.pa);
    expect_5dp(security_ps(10, row.c, 0.2), row.ps);
  }
}

// ---- Paper Table 2: varying M -------------------------------------------
struct T2Row {
  int m, c;
  double pa01, ps01, pa02, ps02;  // Pi = 0.1 and Pi = 0.2 columns
};

constexpr T2Row kTable2[] = {
    // Upper half: C fixed at 2 while M grows (security decays).
    {4, 2, 0.99630, 0.97200, 0.97280, 0.89600},
    {6, 2, 0.99994, 0.91854, 0.99840, 0.73728},
    {8, 2, 1.00000, 0.85031, 0.99992, 0.57672},
    {10, 2, 1.00000, 0.77484, 1.00000, 0.43621},
    {12, 2, 1.00000, 0.69736, 1.00000, 0.32212},
    // Lower half: C grows with M (both improve).
    {4, 2, 0.99630, 0.97200, 0.97280, 0.89600},
    {6, 3, 0.99873, 0.99144, 0.98304, 0.94208},
    {8, 4, 0.99957, 0.99727, 0.98959, 0.96666},
    {10, 5, 0.99985, 0.99911, 0.99363, 0.98042},
    {12, 6, 0.99995, 0.99970, 0.99610, 0.98835},
};

TEST(PaperGolden, Table2) {
  for (const auto& row : kTable2) {
    expect_5dp(availability_pa(row.m, row.c, 0.1), row.pa01);
    expect_5dp(security_ps(row.m, row.c, 0.1), row.ps01);
    expect_5dp(availability_pa(row.m, row.c, 0.2), row.pa02);
    expect_5dp(security_ps(row.m, row.c, 0.2), row.ps02);
  }
}

// ---- Figure 5 qualitative shape ------------------------------------------
TEST(Figure5Shape, PaDecreasesPsIncreasesInC) {
  const TradeoffCurves curves = tradeoff_curves(10, 0.1);
  ASSERT_EQ(curves.pa.size(), 10u);
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_LE(curves.pa[i], curves.pa[i - 1] + 1e-12);
    EXPECT_GE(curves.ps[i], curves.ps[i - 1] - 1e-12);
  }
}

TEST(Figure5Shape, WideMiddleBandNearOne) {
  // "there is a relatively large range of values of C around M/2 where both
  // availability and security are very close to 1."
  const TradeoffCurves curves = tradeoff_curves(10, 0.1);
  for (int c = 4; c <= 6; ++c) {
    EXPECT_GT(curves.pa[static_cast<std::size_t>(c - 1)], 0.99);
    EXPECT_GT(curves.ps[static_cast<std::size_t>(c - 1)], 0.99);
  }
}

TEST(Figure5Shape, BalancedQuorumNearHalfM) {
  EXPECT_NEAR(balanced_check_quorum(10, 0.1), 5, 1);
  EXPECT_NEAR(balanced_check_quorum(10, 0.2), 5, 1);
  EXPECT_NEAR(balanced_check_quorum(12, 0.1), 6, 1);
}

// ---- Heterogeneous model --------------------------------------------------
TEST(PoissonBinomial, MatchesBinomialWhenHomogeneous) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.next_in_range(1, 12));
    const int k = static_cast<int>(rng.next_in_range(0, n));
    const double p = rng.next_double();
    const std::vector<double> probs(static_cast<std::size_t>(n), p);
    EXPECT_NEAR(poisson_binomial_at_least(probs, k),
                binomial_at_least(n, k, p), 1e-9);
  }
}

TEST(PoissonBinomial, EdgeCases) {
  EXPECT_DOUBLE_EQ(poisson_binomial_at_least({0.5, 0.5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_binomial_at_least({0.5, 0.5}, 3), 0.0);
  EXPECT_DOUBLE_EQ(poisson_binomial_at_least({1.0, 1.0}, 2), 1.0);
  EXPECT_DOUBLE_EQ(poisson_binomial_at_least({0.0}, 1), 0.0);
}

TEST(Heterogeneous, PaPsMatchHomogeneousFormulas) {
  const std::vector<double> inaccess(10, 0.1);
  EXPECT_NEAR(availability_pa_hetero(inaccess, 4), availability_pa(10, 4, 0.1),
              1e-9);
  const std::vector<double> peers(9, 0.1);
  EXPECT_NEAR(security_ps_hetero(peers, 4), security_ps(10, 4, 0.1), 1e-9);
}

TEST(Heterogeneous, OneFlakyManagerHurtsSecurityMoreAtHighC) {
  // A single hard-to-reach peer matters when the update quorum needs
  // everyone (C = 1 -> update quorum M), not when it needs only a few.
  std::vector<double> peers(9, 0.01);
  peers[0] = 0.8;  // one nearly-partitioned manager
  const double ps_c1 = security_ps_hetero(peers, 1);   // needs all 9 peers
  const double ps_c8 = security_ps_hetero(peers, 8);   // needs 2 peers
  EXPECT_LT(ps_c1, 0.25);
  EXPECT_GT(ps_c8, 0.999);
}

TEST(SharedLink, ReducesToIndependentWithoutLinks) {
  SharedLinkModel model;
  model.link_of = {-1, -1, -1};
  model.link_fail = {};
  model.residual = {0.1, 0.1, 0.1};
  EXPECT_NEAR(model.at_least_accessible(2), binomial_at_least(3, 2, 0.9), 1e-9);
}

TEST(SharedLink, SharedLinkCorrelatesFailures) {
  // Three managers behind one link with failure probability q: the chance
  // that at least 2 are accessible is (1-q) * P[>=2 of 3 | residual].
  SharedLinkModel model;
  model.link_of = {0, 0, 0};
  model.link_fail = {0.2};
  model.residual = {0.1, 0.1, 0.1};
  EXPECT_NEAR(model.at_least_accessible(2),
              0.8 * binomial_at_least(3, 2, 0.9), 1e-9);

  // Independent managers with the same *marginal* inaccessibility
  // 1 - 0.8*0.9 = 0.28 would do strictly better at the 2-quorum.
  const double independent = binomial_at_least(3, 2, 0.72);
  EXPECT_LT(model.at_least_accessible(2), independent);
}

TEST(SharedLink, MixedTopology) {
  SharedLinkModel model;
  model.link_of = {0, 0, 1, -1};
  model.link_fail = {0.5, 0.5};
  model.residual = {0.0, 0.0, 0.0, 0.0};
  // P[at least 1 accessible] = 1 - P[link0 down AND link1 down] (manager 3 is
  // linkless and perfect => always accessible): actually always 1.
  EXPECT_NEAR(model.at_least_accessible(1), 1.0, 1e-12);
  // P[all 4 accessible] = both links up = 0.25.
  EXPECT_NEAR(model.at_least_accessible(4), 0.25, 1e-12);
}

TEST(WeightedEstimate, WeightsShiftTheMean) {
  WeightedEstimate est;
  est.probabilities = {1.0, 0.5};
  est.weights = {1.0, 3.0};
  EXPECT_NEAR(est.weighted_mean(), 0.625, 1e-12);
}

TEST(WeightedEstimate, PlacementEffect) {
  // The paper's closing §4.1 point: a frequently-revoking manager that is
  // frequently inaccessible drags system security down; re-weighting the
  // same probabilities by update frequency shows it.
  std::vector<double> ps_per_manager;
  for (int j = 0; j < 5; ++j) {
    std::vector<double> peers(4, 0.05);
    if (j == 0) peers.assign(4, 0.5);  // manager 0 sits behind a bad link
    ps_per_manager.push_back(security_ps_hetero(peers, 3));
  }
  WeightedEstimate uniform{ps_per_manager, {1, 1, 1, 1, 1}};
  WeightedEstimate skewed{ps_per_manager, {10, 1, 1, 1, 1}};  // mgr 0 revokes often
  EXPECT_LT(skewed.weighted_mean(), uniform.weighted_mean());
}

// ---- Overhead / latency model ---------------------------------------------
TEST(OverheadModel, ScalesLinearlyInCAndInverseTe) {
  using sim::Duration;
  const double base = overhead_c_over_te(1, Duration::seconds(100));
  EXPECT_NEAR(overhead_c_over_te(5, Duration::seconds(100)), 5.0 * base, 1e-12);
  EXPECT_NEAR(overhead_c_over_te(1, Duration::seconds(200)), base / 2.0, 1e-12);
}

TEST(OverheadModel, ExpectedDelayIncreasesWithQuorum) {
  double prev = 0.0;
  for (int c = 1; c <= 5; ++c) {
    const double d = expected_check_delay_seconds(5, c, 0.04, 0.02);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(OverheadModel, UnreachableDelayIsRTimesTimeout) {
  using sim::Duration;
  EXPECT_NEAR(unreachable_delay_seconds(3, Duration::seconds(2)), 6.0, 1e-12);
}

// ---- Advisor ----------------------------------------------------------------
TEST(Advisor, SecurityWeightMovesCUp) {
  const auto avail_first = choose_check_quorum(10, 0.1, 0.0);
  const auto sec_first = choose_check_quorum(10, 0.1, 1.0);
  EXPECT_LT(avail_first.check_quorum, sec_first.check_quorum);
  EXPECT_EQ(avail_first.check_quorum, 1);   // PA maximal at C=1
  EXPECT_EQ(sec_first.check_quorum, 10);    // PS maximal at C=M
}

TEST(Advisor, BalancedMeetsBothWellAtM10) {
  const auto rec = choose_check_quorum(10, 0.1, 0.5);
  EXPECT_GT(rec.pa, 0.99);
  EXPECT_GT(rec.ps, 0.99);
}

TEST(Advisor, SmallestFeasibleFindsTable2Shape) {
  // Targets achievable at M=10, C=5 for Pi=0.1 must be found at M <= 10.
  Requirements req;
  req.min_availability = 0.999;
  req.min_security = 0.999;
  req.pi = 0.1;
  const auto rec = smallest_feasible(req);
  ASSERT_TRUE(rec.has_value());
  EXPECT_LE(rec->managers, 10);
  EXPECT_TRUE(rec->meets(req));
}

TEST(Advisor, InfeasibleReturnsNullopt) {
  Requirements req;
  req.min_availability = 1.0;  // exactly 1.0 with Pi > 0 needs... C=... never
  req.min_security = 1.0;
  req.pi = 0.5;
  EXPECT_FALSE(smallest_feasible(req, 8).has_value());
}

TEST(Advisor, HigherPiNeedsMoreManagers) {
  Requirements easy{0.99, 0.99, 0.05};
  Requirements hard{0.99, 0.99, 0.30};
  const auto a = smallest_feasible(easy);
  const auto b = smallest_feasible(hard);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_LT(a->managers, b->managers);
}

}  // namespace
}  // namespace wan::analysis
