// Property tests for the shard subsystem: the seeded stable hash the ring
// and the key->shard mapping stand on, and the ShardMap placement itself.
//
// Two properties carry the whole design (shard_map.hpp):
//   balance      — keys spread evenly over shards and shards spread evenly
//                  over groups, so no manager group becomes the hot ceiling
//                  the sharding exists to remove;
//   monotonicity — adding a group only MOVES shards onto it, removing one
//                  only moves that group's shards away. Every shard that
//                  moves is a handoff; a non-monotone ring would reshuffle
//                  the world on every join/leave.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "shard/shard_map.hpp"
#include "util/hash.hpp"

namespace wan {
namespace {

using shard::ShardMap;

std::vector<std::vector<HostId>> make_groups(int n, int size = 2) {
  std::vector<std::vector<HostId>> groups;
  std::uint32_t next = 0;
  for (int g = 0; g < n; ++g) {
    std::vector<HostId> members;
    for (int m = 0; m < size; ++m) members.push_back(HostId(next++));
    groups.push_back(std::move(members));
  }
  return groups;
}

// --- stable_hash64 ----------------------------------------------------------

TEST(StableHash, PinnedValues) {
  // The hash is frozen: ring placements and wire-carried seeds depend on it.
  // If this test ever fails, the change is a breaking format change, not a
  // refactor.
  EXPECT_EQ(stable_hash64(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(stable_hash64(0, 1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(stable_hash64(1, 0), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(stable_hash64(shard::kDefaultRingSeed, 1, 7),
            stable_hash64(stable_hash64(shard::kDefaultRingSeed, 1), 7));
}

TEST(StableHash, SeedChangesEverything) {
  int same = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    if (stable_hash64(1, x) == stable_hash64(2, x)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(StableHash, BalanceOverOneMillionKeys) {
  // The satellite's stated bar: bucket the hash of 1M sequential keys —
  // the worst realistic input, since real user ids ARE sequential — and
  // require max/min bucket occupancy within 1.3x. A biased mixer fails this
  // instantly; an avalanching one passes with huge margin.
  constexpr int kBuckets = 64;
  constexpr std::uint64_t kKeys = 1'000'000;
  std::vector<std::uint64_t> bucket(kBuckets, 0);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ++bucket[stable_hash64(shard::kDefaultRingSeed, k) % kBuckets];
  }
  std::uint64_t lo = kKeys;
  std::uint64_t hi = 0;
  for (const std::uint64_t b : bucket) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  ASSERT_GT(lo, 0u);
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 1.3)
      << "max bucket " << hi << " vs min " << lo;
}

TEST(StableHash, PairBalanceOverAppUserKeys) {
  // The actual shard key is the (app, user) pair; make sure the two-word
  // variant spreads as well as the one-word one.
  constexpr int kBuckets = 32;
  std::vector<std::uint64_t> bucket(kBuckets, 0);
  for (std::uint64_t app = 1; app <= 4; ++app) {
    for (std::uint64_t user = 0; user < 250'000; ++user) {
      ++bucket[stable_hash64(shard::kDefaultRingSeed, app, user) % kBuckets];
    }
  }
  std::uint64_t lo = ~0ULL;
  std::uint64_t hi = 0;
  for (const std::uint64_t b : bucket) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  ASSERT_GT(lo, 0u);
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 1.3);
}

// --- ShardMap placement -----------------------------------------------------

TEST(ShardMap, SingleGroupOwnsEverything) {
  const ShardMap map = ShardMap::single_group({HostId(0), HostId(1)});
  EXPECT_TRUE(map.trivial());
  EXPECT_TRUE(map.valid());
  EXPECT_EQ(map.shard_count(), 1u);
  EXPECT_TRUE(map.owns(HostId(0), AppId(1), UserId(7)));
  EXPECT_TRUE(map.owns(HostId(1), AppId(9), UserId(123)));
  EXPECT_FALSE(map.owns(HostId(2), AppId(1), UserId(7)));
}

TEST(ShardMap, RingCoversEveryShardExactlyOnce) {
  const ShardMap map = ShardMap::ring(make_groups(3), 64, 1);
  EXPECT_TRUE(map.valid());
  EXPECT_FALSE(map.trivial());
  std::set<std::uint32_t> covered;
  for (std::uint32_t g = 0; g < 3; ++g) {
    for (const std::uint32_t s : map.shards_of_group(g)) {
      EXPECT_TRUE(covered.insert(s).second) << "shard " << s << " owned twice";
    }
  }
  EXPECT_EQ(covered.size(), 64u);
}

TEST(ShardMap, GroupBalance) {
  // With vnodes the ring splits shards between groups within a loose bound;
  // what matters operationally is that no group ends up empty or with the
  // bulk of the key space.
  const ShardMap map = ShardMap::ring(make_groups(4), 256, 1);
  std::size_t lo = 256;
  std::size_t hi = 0;
  for (std::uint32_t g = 0; g < 4; ++g) {
    const std::size_t n = map.shards_of_group(g).size();
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  ASSERT_GT(lo, 0u);
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 3.0)
      << "shards per group: max " << hi << " min " << lo;
}

TEST(ShardMap, MonotoneUnderGroupAdd) {
  // Consistent-hash monotonicity: going from G groups to G+1, a shard
  // either keeps its owner or moves TO the new group. Any other move is a
  // gratuitous handoff.
  const ShardMap before = ShardMap::ring(make_groups(3), 128, 1);
  const ShardMap after = ShardMap::ring(make_groups(4), 128, 2);
  int moved = 0;
  for (std::uint32_t s = 0; s < 128; ++s) {
    const std::uint32_t was = before.group_of_shard(s);
    const std::uint32_t now = after.group_of_shard(s);
    if (was != now) {
      EXPECT_EQ(now, 3u) << "shard " << s << " moved " << was << " -> " << now
                         << " instead of to the new group";
      ++moved;
    }
  }
  // The new group must actually take a share of the space.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 128);
}

TEST(ShardMap, MonotoneUnderGroupRemove) {
  const ShardMap before = ShardMap::ring(make_groups(4), 128, 1);
  const ShardMap after = ShardMap::ring(make_groups(3), 128, 2);
  for (std::uint32_t s = 0; s < 128; ++s) {
    const std::uint32_t was = before.group_of_shard(s);
    const std::uint32_t now = after.group_of_shard(s);
    if (was != 3u) {
      EXPECT_EQ(was, now) << "shard " << s
                          << " moved although its group survived";
    } else {
      EXPECT_NE(now, 3u);
    }
  }
}

TEST(ShardMap, KeyToShardIgnoresOwnership) {
  // shard_of depends only on (ring_seed, shard_count): a rebalance moves
  // ownership, never key placement.
  const ShardMap a = ShardMap::ring(make_groups(2), 64, 1);
  const ShardMap b = ShardMap::ring(make_groups(3), 64, 2);
  for (std::uint32_t u = 0; u < 500; ++u) {
    EXPECT_EQ(a.shard_of(AppId(1), UserId(u)), b.shard_of(AppId(1), UserId(u)));
  }
}

TEST(ShardMap, AssignedPlacementAndLookups) {
  const ShardMap map = ShardMap::assigned(make_groups(2), {1, 0, 1}, 5);
  EXPECT_EQ(map.epoch(), 5u);
  EXPECT_EQ(map.shard_count(), 3u);
  EXPECT_EQ(map.group_of_shard(0), 1u);
  EXPECT_EQ(map.group_of_shard(1), 0u);
  EXPECT_TRUE(map.owns_shard(HostId(2), 0));   // group 1 = {2, 3}
  EXPECT_FALSE(map.owns_shard(HostId(0), 0));  // group 0 = {0, 1}
  EXPECT_EQ(map.group_index_of(HostId(3)), std::optional<std::uint32_t>{1});
  EXPECT_EQ(map.group_index_of(HostId(9)), std::nullopt);
  EXPECT_EQ(map.all_managers().size(), 4u);
}

TEST(ShardMap, ValidRejectsOverlapAndBadOwners) {
  ShardMap overlap = ShardMap::assigned(make_groups(2), {0, 1}, 1);
  EXPECT_TRUE(overlap.valid());
  // Overlapping groups are structurally invalid: a manager with two groups
  // would run two conflicting quorum worlds.
  EXPECT_DEATH(ShardMap::assigned({{HostId(0)}, {HostId(0)}}, {0}, 1), "");
  EXPECT_DEATH(ShardMap::assigned(make_groups(2), {0, 7}, 1), "");
}

TEST(ShardMap, EmptyMapIsTrivialAndValid) {
  const ShardMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.trivial());
  EXPECT_TRUE(map.valid());
  EXPECT_EQ(map.epoch(), 0u);
}

}  // namespace
}  // namespace wan
