// Unit tests for the simulated network: delivery, latency, loss models,
// partition models, host up/down, statistics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/latency_model.hpp"
#include "net/loss_model.hpp"
#include "net/network.hpp"
#include "net/partition_model.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace wan::net {
namespace {

using sim::Duration;
using sim::TimePoint;

struct Ping final : Message {
  int value = 0;
  explicit Ping(int v) : value(v) {}
  WAN_MESSAGE_TYPE("Ping")
};

struct NetFixture : ::testing::Test {
  sim::Scheduler sched;
  std::vector<std::pair<HostId, int>> received;  // (from, value) at host B

  std::unique_ptr<Network> make_net(Network::Config cfg = {}) {
    auto net = std::make_unique<Network>(sched, Rng(1), std::move(cfg));
    net->register_host(HostId(1), [](HostId, const MessagePtr&) {});
    net->register_host(HostId(2), [this](HostId from, const MessagePtr& msg) {
      if (const auto* p = message_cast<Ping>(msg)) {
        received.emplace_back(from, p->value);
      }
    });
    net->start();
    return net;
  }
};

TEST_F(NetFixture, DeliversWithLatency) {
  Network::Config cfg;
  cfg.latency = std::make_unique<ConstantLatency>(Duration::millis(70));
  auto net = make_net(std::move(cfg));
  net->send(HostId(1), HostId(2), make_message<Ping>(42));
  sched.run_until(TimePoint{} + Duration::millis(69));
  EXPECT_TRUE(received.empty());
  sched.run_until(TimePoint{} + Duration::millis(71));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, HostId(1));
  EXPECT_EQ(received[0].second, 42);
}

TEST_F(NetFixture, SelfSendDeliversImmediately) {
  auto net = make_net();
  int got = 0;
  net->register_host(HostId(3), [&](HostId, const MessagePtr&) { ++got; });
  net->send(HostId(3), HostId(3), make_message<Ping>(1));
  sched.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, MulticastSkipsSelf) {
  auto net = make_net();
  net->multicast(HostId(2), {HostId(1), HostId(2)}, make_message<Ping>(5));
  sched.run_all();
  EXPECT_EQ(net->stats().sent, 1u);  // only to host 1
}

TEST_F(NetFixture, DownHostDoesNotReceive) {
  auto net = make_net();
  net->set_host_down(HostId(2), true);
  net->send(HostId(1), HostId(2), make_message<Ping>(1));
  sched.run_all();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(net->stats().dropped_host_down, 1u);
}

TEST_F(NetFixture, DownHostDoesNotSend) {
  auto net = make_net();
  net->set_host_down(HostId(1), true);
  net->send(HostId(1), HostId(2), make_message<Ping>(1));
  sched.run_all();
  EXPECT_TRUE(received.empty());
}

TEST_F(NetFixture, CrashWhileInFlightDropsAtDelivery) {
  Network::Config cfg;
  cfg.latency = std::make_unique<ConstantLatency>(Duration::millis(100));
  auto net = make_net(std::move(cfg));
  net->send(HostId(1), HostId(2), make_message<Ping>(1));
  sched.run_until(TimePoint{} + Duration::millis(50));
  net->set_host_down(HostId(2), true);
  sched.run_all();
  EXPECT_TRUE(received.empty());
}

TEST_F(NetFixture, RecoveryRestoresDelivery) {
  auto net = make_net();
  net->set_host_down(HostId(2), true);
  net->set_host_down(HostId(2), false);
  net->send(HostId(1), HostId(2), make_message<Ping>(9));
  sched.run_all();
  ASSERT_EQ(received.size(), 1u);
}

TEST_F(NetFixture, UnknownDestinationIsBlackHoled) {
  auto net = make_net();
  net->send(HostId(1), HostId(777), make_message<Ping>(1));
  sched.run_all();
  EXPECT_EQ(net->stats().sent, 1u);
  EXPECT_EQ(net->stats().delivered, 0u);
  EXPECT_EQ(net->stats().dropped_host_down, 1u);
}

TEST_F(NetFixture, StatsCountPerType) {
  auto net = make_net();
  net->send(HostId(1), HostId(2), make_message<Ping>(1));
  net->send(HostId(1), HostId(2), make_message<Ping>(2));
  sched.run_all();
  EXPECT_EQ(net->stats().sent, 2u);
  EXPECT_EQ(net->stats().delivered, 2u);
  EXPECT_EQ(net->stats().sent_by_type().at("Ping"), 2u);
  EXPECT_GT(net->stats().bytes_sent, 0u);
}

TEST_F(NetFixture, BernoulliLossDropsApproximately) {
  Network::Config cfg;
  cfg.loss = std::make_unique<BernoulliLoss>(0.25);
  auto net = make_net(std::move(cfg));
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    net->send(HostId(1), HostId(2), make_message<Ping>(i));
  }
  sched.run_all();
  const double loss_rate =
      static_cast<double>(net->stats().dropped_loss) / n;
  EXPECT_NEAR(loss_rate, 0.25, 0.02);
  EXPECT_EQ(net->stats().delivered + net->stats().dropped_loss,
            static_cast<std::uint64_t>(n));
}

TEST(GilbertElliott, StationaryLossMatchesSimulation) {
  GilbertElliottLoss::Params params;
  params.p_good = 0.01;
  params.p_bad = 0.5;
  params.good_to_bad = 0.05;
  params.bad_to_good = 0.2;
  GilbertElliottLoss model(params);
  Rng rng(3);
  const int n = 200000;
  int drops = 0;
  for (int i = 0; i < n; ++i) {
    if (model.drop(HostId(1), HostId(2), rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, model.stationary_loss(), 0.01);
}

TEST(GilbertElliott, BurstyLossClusters) {
  // Consecutive-drop probability should exceed the marginal drop rate.
  GilbertElliottLoss::Params params;
  GilbertElliottLoss model(params);
  Rng rng(4);
  int drops = 0, pairs = 0, drop_after_drop = 0;
  bool prev = false;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const bool d = model.drop(HostId(1), HostId(2), rng);
    if (d) ++drops;
    if (prev) {
      ++pairs;
      if (d) ++drop_after_drop;
    }
    prev = d;
  }
  const double marginal = static_cast<double>(drops) / n;
  const double conditional = static_cast<double>(drop_after_drop) / pairs;
  EXPECT_GT(conditional, 2.0 * marginal);
}

TEST(UniformLatency, WithinBounds) {
  UniformLatency lat(Duration::millis(10), Duration::millis(20));
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto d = lat.sample(HostId(1), HostId(2), rng);
    EXPECT_GE(d, Duration::millis(10));
    EXPECT_LE(d, Duration::millis(20));
  }
}

TEST(ExponentialTailLatency, MeanApproximatelyBasePlusTail) {
  ExponentialTailLatency lat(Duration::millis(40), Duration::millis(20));
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += lat.sample(HostId(1), HostId(2), rng).to_seconds();
  }
  EXPECT_NEAR(sum / n, 0.060, 0.002);
}

TEST(ScriptedPartitions, LinkCutBlocksBothDirections) {
  ScriptedPartitions p;
  EXPECT_TRUE(p.connected(HostId(1), HostId(2)));
  p.cut_link(HostId(1), HostId(2));
  EXPECT_FALSE(p.connected(HostId(1), HostId(2)));
  EXPECT_FALSE(p.connected(HostId(2), HostId(1)));
  p.heal_link(HostId(2), HostId(1));  // order-insensitive
  EXPECT_TRUE(p.connected(HostId(1), HostId(2)));
}

TEST(ScriptedPartitions, SplitSeparatesComponents) {
  ScriptedPartitions p;
  p.split({{HostId(1), HostId(2)}, {HostId(3)}});
  EXPECT_TRUE(p.connected(HostId(1), HostId(2)));
  EXPECT_FALSE(p.connected(HostId(1), HostId(3)));
  // Unlisted hosts share a default component.
  EXPECT_TRUE(p.connected(HostId(8), HostId(9)));
  EXPECT_FALSE(p.connected(HostId(8), HostId(1)));
  p.heal_all();
  EXPECT_TRUE(p.connected(HostId(1), HostId(3)));
}

TEST(ScriptedPartitions, IsolateCutsAllLinks) {
  ScriptedPartitions p;
  const std::vector<HostId> all{HostId(1), HostId(2), HostId(3)};
  p.isolate(HostId(2), all);
  EXPECT_FALSE(p.connected(HostId(2), HostId(1)));
  EXPECT_FALSE(p.connected(HostId(2), HostId(3)));
  EXPECT_TRUE(p.connected(HostId(1), HostId(3)));
}

TEST(ScriptedPartitions, SelfAlwaysConnected) {
  ScriptedPartitions p;
  p.split({{HostId(1)}, {HostId(2)}});
  EXPECT_TRUE(p.connected(HostId(1), HostId(1)));
}

TEST(ScriptedPartitions, LinkCutsPersistAcrossSplitAndHeal) {
  // split() replaces only the component assignment; explicit link cuts are an
  // independent overlay that survives both a split and its heal.
  ScriptedPartitions p;
  p.cut_link(HostId(1), HostId(2));
  p.split({{HostId(1), HostId(2)}, {HostId(3)}});
  EXPECT_FALSE(p.connected(HostId(1), HostId(2)));  // cut wins inside component
  p.split({});  // kHealSplit semantics: clears the split only
  EXPECT_FALSE(p.connected(HostId(1), HostId(2)));
  EXPECT_TRUE(p.connected(HostId(1), HostId(3)));
  p.heal_all();
  EXPECT_TRUE(p.connected(HostId(1), HostId(2)));
}

TEST(DirectionalPartitions, OneWayCutBlocksOnlyThatDirection) {
  DirectionalPartitions p;
  p.cut_one_way(HostId(1), HostId(2));
  EXPECT_FALSE(p.connected(HostId(1), HostId(2)));
  EXPECT_TRUE(p.connected(HostId(2), HostId(1)));
  EXPECT_EQ(p.one_way_cut_count(), 1u);
  p.heal_one_way(HostId(1), HostId(2));
  EXPECT_TRUE(p.connected(HostId(1), HostId(2)));
  EXPECT_EQ(p.one_way_cut_count(), 0u);
}

TEST(DirectionalPartitions, CutBetweenRegionsIsSourceToSinkOnly) {
  DirectionalPartitions p;
  const std::vector<HostId> west{HostId(1), HostId(2)};
  const std::vector<HostId> east{HostId(3), HostId(4)};
  p.cut_one_way_between(west, east);
  for (const HostId s : west) {
    for (const HostId d : east) {
      EXPECT_FALSE(p.connected(s, d));
      EXPECT_TRUE(p.connected(d, s));
    }
  }
  EXPECT_TRUE(p.connected(HostId(1), HostId(2)));  // intra-region untouched
  EXPECT_TRUE(p.connected(HostId(3), HostId(4)));
}

TEST(DirectionalPartitions, ComposesWithSymmetricCutsAndSplits) {
  // connected() is the conjunction of all three layers; healing one layer
  // must not disturb the others.
  DirectionalPartitions p;
  p.cut_one_way(HostId(1), HostId(2));
  p.cut_link(HostId(2), HostId(3));
  p.split({{HostId(1), HostId(2), HostId(3)}, {HostId(4)}});
  EXPECT_FALSE(p.connected(HostId(1), HostId(2)));  // one-way
  EXPECT_FALSE(p.connected(HostId(2), HostId(3)));  // symmetric cut
  EXPECT_FALSE(p.connected(HostId(1), HostId(4)));  // split
  p.split({});
  EXPECT_FALSE(p.connected(HostId(1), HostId(2)));  // one-way persists
  EXPECT_FALSE(p.connected(HostId(2), HostId(3)));  // cut persists
  EXPECT_TRUE(p.connected(HostId(1), HostId(4)));
}

TEST(DirectionalPartitions, HealAllClearsOneWayCutsToo) {
  DirectionalPartitions p;
  p.cut_one_way(HostId(1), HostId(2));
  p.cut_one_way_between({HostId(3)}, {HostId(4), HostId(5)});
  p.cut_link(HostId(1), HostId(3));
  ASSERT_EQ(p.one_way_cut_count(), 3u);
  p.heal_all();
  EXPECT_EQ(p.one_way_cut_count(), 0u);
  EXPECT_TRUE(p.connected(HostId(1), HostId(2)));
  EXPECT_TRUE(p.connected(HostId(3), HostId(4)));
  EXPECT_TRUE(p.connected(HostId(1), HostId(3)));
}

TEST(PairwiseMarkov, StationaryDownFractionMatchesPi) {
  sim::Scheduler sched;
  std::vector<HostId> hosts;
  for (std::uint32_t i = 0; i < 12; ++i) hosts.push_back(HostId(i));
  const double pi = 0.15;
  PairwiseMarkovPartitions model(
      hosts, {pi, Duration::seconds(30)});
  model.start(sched, Rng(7));
  // Time-average the down fraction over a long horizon.
  double sum = 0.0;
  int samples = 0;
  sim::PeriodicTimer sampler(sched);
  sampler.start(Duration::seconds(10), [&] {
    sum += model.down_fraction();
    ++samples;
  });
  sched.run_until(TimePoint{} + Duration::hours(30));
  EXPECT_NEAR(sum / samples, pi, 0.01);
}

TEST(PairwiseMarkov, ZeroPiNeverDisconnects) {
  sim::Scheduler sched;
  std::vector<HostId> hosts{HostId(0), HostId(1), HostId(2)};
  PairwiseMarkovPartitions model(hosts, {0.0, Duration::seconds(30)});
  model.start(sched, Rng(8));
  sched.run_until(TimePoint{} + Duration::hours(1));
  EXPECT_TRUE(model.connected(HostId(0), HostId(1)));
  EXPECT_DOUBLE_EQ(model.down_fraction(), 0.0);
}

TEST(PairwiseMarkov, PairsIndependentAcrossIndices) {
  // pair_index must be a bijection: flipping pair (0,1) must not affect (1,2).
  sim::Scheduler sched;
  std::vector<HostId> hosts{HostId(0), HostId(1), HostId(2), HostId(3)};
  PairwiseMarkovPartitions model(hosts, {0.5, Duration::seconds(5)});
  model.start(sched, Rng(9));
  sched.run_until(TimePoint{} + Duration::minutes(10));
  // Exercise all pairs; absence of assertion failures validates indexing.
  int connected = 0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (model.connected(hosts[i], hosts[j])) ++connected;
    }
  }
  EXPECT_GE(connected, 4);  // at least the self-loops
}

TEST(ComponentStorms, StormsDisconnectAndHeal) {
  sim::Scheduler sched;
  std::vector<HostId> hosts;
  for (std::uint32_t i = 0; i < 6; ++i) hosts.push_back(HostId(i));
  ComponentStormPartitions::Config cfg;
  cfg.mean_between_storms = Duration::seconds(60);
  cfg.mean_storm_duration = Duration::seconds(20);
  ComponentStormPartitions model(hosts, cfg);
  model.start(sched, Rng(10));

  std::uint64_t disconnected_samples = 0, samples = 0;
  sim::PeriodicTimer sampler(sched);
  sampler.start(Duration::seconds(1), [&] {
    ++samples;
    bool any_cut = false;
    for (std::size_t i = 0; i < hosts.size() && !any_cut; ++i) {
      for (std::size_t j = i + 1; j < hosts.size(); ++j) {
        if (!model.connected(hosts[i], hosts[j])) {
          any_cut = true;
          break;
        }
      }
    }
    if (any_cut) ++disconnected_samples;
  });
  sched.run_until(TimePoint{} + Duration::hours(2));
  EXPECT_GT(model.storms_seen(), 20u);
  const double frac =
      static_cast<double>(disconnected_samples) / static_cast<double>(samples);
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.60);
}

TEST_F(NetFixture, PartitionBlocksDelivery) {
  auto scripted = std::make_shared<ScriptedPartitions>();
  Network::Config cfg;
  cfg.partitions = scripted;
  auto net = make_net(std::move(cfg));
  scripted->cut_link(HostId(1), HostId(2));
  net->send(HostId(1), HostId(2), make_message<Ping>(1));
  sched.run_all();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(net->stats().dropped_partition, 1u);
  scripted->heal_all();
  net->send(HostId(1), HostId(2), make_message<Ping>(2));
  sched.run_all();
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(NetFixture, OneWayCutDropsOnlyTheCutDirection) {
  auto dir = std::make_shared<DirectionalPartitions>();
  Network::Config cfg;
  cfg.partitions = dir;
  auto net = make_net(std::move(cfg));
  int host1_got = 0;
  net->register_host(HostId(1),
                     [&](HostId, const MessagePtr&) { ++host1_got; });

  dir->cut_one_way(HostId(1), HostId(2));
  net->send(HostId(1), HostId(2), make_message<Ping>(1));  // dropped
  net->send(HostId(2), HostId(1), make_message<Ping>(2));  // delivered
  sched.run_all();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(host1_got, 1);
  EXPECT_EQ(net->stats().dropped_partition, 1u);
  EXPECT_FALSE(net->reachable(HostId(1), HostId(2)));
  EXPECT_TRUE(net->reachable(HostId(2), HostId(1)));

  dir->heal_one_way(HostId(1), HostId(2));
  net->send(HostId(1), HostId(2), make_message<Ping>(3));
  sched.run_all();
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(NetFixture, ReachableReflectsPartitionsAndCrashes) {
  auto scripted = std::make_shared<ScriptedPartitions>();
  Network::Config cfg;
  cfg.partitions = scripted;
  auto net = make_net(std::move(cfg));
  EXPECT_TRUE(net->reachable(HostId(1), HostId(2)));
  scripted->cut_link(HostId(1), HostId(2));
  EXPECT_FALSE(net->reachable(HostId(1), HostId(2)));
  scripted->heal_all();
  net->set_host_down(HostId(2), true);
  EXPECT_FALSE(net->reachable(HostId(1), HostId(2)));
}

TEST_F(NetFixture, DuplicationDeliversEveryDatagramTwice) {
  // duplicate = 1.0: each non-loopback send arrives exactly twice, each copy
  // with its own sampled latency. The chaos harness leans on this knob;
  // protocol handlers must be idempotent against it.
  Network::Config cfg;
  cfg.duplicate = 1.0;
  auto net = make_net(std::move(cfg));
  for (int i = 0; i < 5; ++i) {
    net->send(HostId(1), HostId(2), make_message<Ping>(i));
  }
  sched.run_all();
  EXPECT_EQ(received.size(), 10u);
  EXPECT_EQ(net->stats().duplicated, 5u);
  EXPECT_EQ(net->stats().delivered, 10u);
}

TEST_F(NetFixture, DuplicationOffByDefault) {
  auto net = make_net();
  net->send(HostId(1), HostId(2), make_message<Ping>(7));
  sched.run_all();
  EXPECT_EQ(received.size(), 1u);
  EXPECT_EQ(net->stats().duplicated, 0u);
}

}  // namespace
}  // namespace wan::net
