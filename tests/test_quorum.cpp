// Unit + property tests for quorum arithmetic and trackers — including the
// intersection property that carries the paper's §3.3 guarantee.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "quorum/quorum.hpp"

namespace wan::quorum {
namespace {

TEST(QuorumConfig, UpdateQuorumArithmetic) {
  EXPECT_EQ(QuorumConfig(10, 1).update_quorum(), 10);
  EXPECT_EQ(QuorumConfig(10, 5).update_quorum(), 6);
  EXPECT_EQ(QuorumConfig(10, 10).update_quorum(), 1);
  EXPECT_EQ(QuorumConfig(1, 1).update_quorum(), 1);
}

// "which ensures that every update for which a quorum has been obtained has
// been received by at least one manager in any check quorum" — the pigeonhole
// inequality check + update > M, swept over every admissible (M, C).
class IntersectionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IntersectionProperty, CheckAndUpdateQuorumsIntersect) {
  const auto [m, c] = GetParam();
  if (c > m) GTEST_SKIP();
  const QuorumConfig cfg(m, c);
  EXPECT_TRUE(QuorumConfig::intersects(m, cfg.check_quorum(), cfg.update_quorum()));
  // Tightness: one fewer in the update quorum breaks the property.
  if (cfg.update_quorum() > 0) {
    EXPECT_FALSE(
        QuorumConfig::intersects(m, cfg.check_quorum(), cfg.update_quorum() - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, IntersectionProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 10, 12, 16, 32),
                       ::testing::Values(1, 2, 3, 5, 8, 10, 16, 32)));

TEST(QuorumTracker, ReachedExactlyOnce) {
  QuorumTracker t(2);
  EXPECT_FALSE(t.reached());
  EXPECT_FALSE(t.record(HostId(1)));
  EXPECT_TRUE(t.record(HostId(2)));  // completes the quorum
  EXPECT_FALSE(t.record(HostId(3)));  // already complete: no second trigger
  EXPECT_TRUE(t.reached());
  EXPECT_EQ(t.count(), 3);
}

TEST(QuorumTracker, DuplicatesIgnored) {
  QuorumTracker t(2);
  EXPECT_FALSE(t.record(HostId(1)));
  EXPECT_FALSE(t.record(HostId(1)));  // retransmission
  EXPECT_EQ(t.count(), 1);
  EXPECT_TRUE(t.record(HostId(2)));
}

TEST(QuorumTracker, ZeroNeededIsTriviallyReached) {
  QuorumTracker t(0);
  EXPECT_TRUE(t.reached());
  EXPECT_FALSE(t.record(HostId(1)));  // never "completes" — was born complete
}

TEST(QuorumTracker, VotersPreserveOrder) {
  QuorumTracker t(3);
  t.record(HostId(5));
  t.record(HostId(2));
  t.record(HostId(9));
  EXPECT_EQ(t.voters(), (std::vector<HostId>{HostId(5), HostId(2), HostId(9)}));
  EXPECT_TRUE(t.has(HostId(2)));
  EXPECT_FALSE(t.has(HostId(3)));
}

TEST(QuorumTracker, ResetClearsState) {
  QuorumTracker t(1);
  EXPECT_TRUE(t.record(HostId(1)));
  t.reset();
  EXPECT_FALSE(t.reached());
  EXPECT_EQ(t.count(), 0);
  EXPECT_TRUE(t.record(HostId(2)));
}

}  // namespace
}  // namespace wan::quorum
