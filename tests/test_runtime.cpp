// Runtime-seam tests: the ThreadedEnv primitives, cross-runtime equivalence
// of the protocol (the same scripted grant/check/revoke sequence must produce
// the same decision sequence on SimEnv and ThreadedEnv — the seam carries the
// whole protocol, not just the happy path), and the seed-determinism pin the
// refactor must not break (chaos runs stay bit-identical run-to-run).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/engine.hpp"
#include "net/network.hpp"
#include "proto/host.hpp"
#include "runtime/backend.hpp"
#include "runtime/sim_env.hpp"
#include "runtime/threaded_env.hpp"
#include "sim/scheduler.hpp"

namespace wan::runtime {
namespace {

using sim::Duration;

// Polls `pred` until it holds or `limit` wall-clock elapses.
bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds limit = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ------------------------------------------------- ThreadedEnv primitives

TEST(ThreadedEnv, TimerFiresOnceAfterDelay) {
  LoopbackFabric fabric;
  ThreadedEnv env(fabric);
  std::atomic<int> fired{0};
  env.run_sync([&] {
    auto timer = std::make_shared<Timer>(env.make_timer());
    timer->arm(Duration::millis(5), [&fired, timer] { ++fired; });
  });
  ASSERT_TRUE(eventually([&] { return fired.load() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(fired.load(), 1);
  fabric.stop_all();
}

TEST(ThreadedEnv, CancelledTimerNeverFires) {
  LoopbackFabric fabric;
  ThreadedEnv env(fabric);
  std::atomic<int> fired{0};
  auto timer = std::make_shared<Timer>();
  env.run_sync([&] {
    *timer = env.make_timer();
    timer->arm(Duration::millis(20), [&fired] { ++fired; });
    timer->cancel();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(fired.load(), 0);
  fabric.stop_all();
}

TEST(ThreadedEnv, RearmReplacesPendingCallback) {
  LoopbackFabric fabric;
  ThreadedEnv env(fabric);
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  auto timer = std::make_shared<Timer>();
  env.run_sync([&] {
    *timer = env.make_timer();
    timer->arm(Duration::millis(30), [&first] { ++first; });
    timer->arm(Duration::millis(5), [&second] { ++second; });
  });
  ASSERT_TRUE(eventually([&] { return second.load() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(first.load(), 0);
  EXPECT_EQ(second.load(), 1);
  fabric.stop_all();
}

TEST(ThreadedEnv, PeriodicTimerTicksUntilStopped) {
  LoopbackFabric fabric;
  ThreadedEnv env(fabric);
  std::atomic<int> ticks{0};
  auto timer = std::make_shared<PeriodicTimer>();
  env.run_sync([&] {
    *timer = env.make_periodic_timer();
    timer->start(Duration::millis(3), [&ticks] { ++ticks; });
  });
  ASSERT_TRUE(eventually([&] { return ticks.load() >= 3; }));
  env.run_sync([&] { timer->stop(); });
  const int at_stop = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_LE(ticks.load(), at_stop + 1);  // at most one in-flight tick
  fabric.stop_all();
}

TEST(ThreadedEnv, PostedWorkRunsInOrderOnLoopThread) {
  LoopbackFabric fabric;
  ThreadedEnv env(fabric);
  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    env.post([&mu, &order, i] {
      const std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  ASSERT_TRUE(eventually([&] {
    const std::lock_guard<std::mutex> lock(mu);
    return order.size() == 16;
  }));
  const std::lock_guard<std::mutex> lock(mu);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  fabric.stop_all();
}

TEST(ThreadedEnv, NowAdvancesWithWallClock) {
  LoopbackFabric fabric;
  ThreadedEnv env(fabric);
  const sim::TimePoint t0 = env.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const sim::TimePoint t1 = env.now();
  EXPECT_GE((t1 - t0).count_nanos(), 10'000'000);  // >= 10ms elapsed
  fabric.stop_all();
}

TEST(LoopbackFabric, DeliversBetweenEnvsAndRespectsDown) {
  LoopbackFabric fabric;
  ThreadedEnv a(fabric);
  ThreadedEnv b(fabric);
  std::atomic<int> got{0};
  a.transport().register_endpoint(HostId(1),
                                  [](HostId, const net::MessagePtr&) {});
  b.transport().register_endpoint(
      HostId(2), [&got](HostId, const net::MessagePtr&) { ++got; });

  a.transport().send(HostId(1), HostId(2),
                     net::make_message<proto::InvokeReply>(
                         1, true, proto::DenyReason::kNone, "ping"));
  ASSERT_TRUE(eventually([&] { return got.load() == 1; }));

  // A downed destination silently swallows traffic — an unreachable host.
  b.transport().set_endpoint_down(HostId(2), true);
  a.transport().send(HostId(1), HostId(2),
                     net::make_message<proto::InvokeReply>(
                         1, true, proto::DenyReason::kNone, "ping"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 1);

  b.transport().set_endpoint_down(HostId(2), false);
  a.transport().send(HostId(1), HostId(2),
                     net::make_message<proto::InvokeReply>(
                         1, true, proto::DenyReason::kNone, "ping"));
  ASSERT_TRUE(eventually([&] { return got.load() == 2; }));
  fabric.stop_all();
}

TEST(LoopbackFabric, StoppedEnvDropsDeliveriesInsteadOfCrashing) {
  LoopbackFabric fabric;
  ThreadedEnv a(fabric);
  auto b = std::make_unique<ThreadedEnv>(fabric);
  a.transport().register_endpoint(HostId(1),
                                  [](HostId, const net::MessagePtr&) {});
  b->transport().register_endpoint(HostId(2),
                                   [](HostId, const net::MessagePtr&) {});
  b->stop();
  b.reset();  // endpoint record remains; its core is stopped
  for (int i = 0; i < 8; ++i) {
    a.transport().send(HostId(1), HostId(2),
                       net::make_message<proto::InvokeReply>(
                         1, true, proto::DenyReason::kNone, "ping"));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fabric.stop_all();  // reaching here without UB is the assertion
}

// --------------------------------------------- cross-runtime equivalence
//
// The same scripted sequence of manager operations and access checks runs on
// both runtimes; every step barriers on its completion callback before the
// next begins, so the decision sequence is a pure function of protocol logic
// — any divergence means a module leaked a dependency on its runtime.

struct World {
  proto::ManagerHost* managers[3] = {nullptr, nullptr, nullptr};
  proto::AppHost* hosts[2] = {nullptr, nullptr};
  /// Runs `fn` in the node's execution context (loop thread / inline in sim).
  std::function<void(int mgr_idx, std::function<void()> fn)> on_manager;
  std::function<void(int host_idx, std::function<void()> fn)> on_host;
  /// Blocks until `done` (guarded by `mu`) becomes true.
  std::function<void(std::mutex& mu, bool& done)> await;
};

std::vector<std::string> run_script(World& w, AppId app, UserId alice,
                                    UserId mallory) {
  std::vector<std::string> log;
  std::mutex mu;

  auto barrier_op = [&](int mgr, acl::Op op, UserId user) {
    bool done = false;
    w.on_manager(mgr, [&] {
      w.managers[mgr]->manager().submit_update(
          app, op, user, acl::Right::kUse, [&](const proto::UpdateOutcome&) {
            const std::lock_guard<std::mutex> lock(mu);
            done = true;
          });
    });
    w.await(mu, done);
  };
  auto barrier_check = [&](int host, UserId user) {
    bool done = false;
    w.on_host(host, [&] {
      w.hosts[host]->controller().check_access(
          app, user, [&](const proto::AccessDecision& d) {
            const std::lock_guard<std::mutex> lock(mu);
            log.push_back(std::string(d.allowed ? "allow/" : "deny/") +
                          to_cstring(d.path));
            done = true;
          });
    });
    w.await(mu, done);
  };

  barrier_check(0, alice);               // no grant yet: quorum deny
  barrier_op(0, acl::Op::kAdd, alice);   // grant at manager 0
  barrier_check(1, alice);               // cold host: quorum grant
  barrier_check(1, alice);               // warm host: cache hit
  barrier_check(0, mallory);             // never granted: quorum deny
  barrier_op(1, acl::Op::kRevoke, alice);  // revoke at a different manager
  barrier_check(1, alice);               // after revoke: deny
  return log;
}

proto::ProtocolConfig equivalence_config() {
  proto::ProtocolConfig config;
  config.check_quorum = 2;
  config.Te = Duration::minutes(2);
  return config;
}

std::vector<std::string> run_on_sim() {
  const AppId app(1);
  sim::Scheduler sched;
  net::Network::Config ncfg;
  ncfg.latency = std::make_unique<net::ConstantLatency>(Duration::millis(5));
  net::Network net(sched, Rng(7), std::move(ncfg));
  SimEnv env(net);
  ns::NameService names;
  auth::KeyRegistry keys;
  const proto::ProtocolConfig config = equivalence_config();

  std::vector<std::unique_ptr<proto::ManagerHost>> managers;
  const std::vector<HostId> manager_ids{HostId(0), HostId(1), HostId(2)};
  for (const HostId id : manager_ids) {
    managers.push_back(std::make_unique<proto::ManagerHost>(
        id, env, clk::LocalClock::perfect(), config));
  }
  names.set_managers(app, manager_ids);
  for (auto& m : managers) m->manager().manage_app(app, manager_ids);

  std::vector<std::unique_ptr<proto::AppHost>> hosts;
  for (const HostId id : {HostId(100), HostId(101)}) {
    hosts.push_back(std::make_unique<proto::AppHost>(
        id, env, clk::LocalClock::perfect(), names, keys, config));
    hosts.back()->controller().register_app(
        app, [](UserId, const std::string& p) { return p; });
  }
  net.start();

  World w;
  for (int i = 0; i < 3; ++i) w.managers[i] = managers[static_cast<std::size_t>(i)].get();
  for (int i = 0; i < 2; ++i) w.hosts[i] = hosts[static_cast<std::size_t>(i)].get();
  w.on_manager = [](int, std::function<void()> fn) { fn(); };
  w.on_host = [](int, std::function<void()> fn) { fn(); };
  w.await = [&sched](std::mutex&, bool& done) {
    // Deterministic: drive the simulation until the callback lands. The
    // extra 5 s after completion lets revoke notifications and retransmits
    // settle, mirroring the threaded world's post-barrier grace sleep.
    for (int i = 0; i < 100 && !done; ++i) sched.run_for(Duration::seconds(1));
    ASSERT_TRUE(done) << "sim script step never completed";
    sched.run_for(Duration::seconds(5));
  };
  return run_script(w, app, UserId(7), UserId(8));
}

std::vector<std::string> run_on_threads() {
  const AppId app(1);
  EnvOptions fabric_options;
  fabric_options.delay = Duration::millis(1);
  LoopbackFabric fabric(fabric_options);
  ns::NameService names;
  auth::KeyRegistry keys;
  const proto::ProtocolConfig config = equivalence_config();

  std::vector<std::unique_ptr<ThreadedEnv>> envs;
  for (int i = 0; i < 5; ++i) envs.push_back(std::make_unique<ThreadedEnv>(fabric));

  std::vector<std::unique_ptr<proto::ManagerHost>> managers;
  const std::vector<HostId> manager_ids{HostId(0), HostId(1), HostId(2)};
  for (int i = 0; i < 3; ++i) {
    managers.push_back(std::make_unique<proto::ManagerHost>(
        manager_ids[static_cast<std::size_t>(i)], *envs[static_cast<std::size_t>(i)],
        clk::LocalClock::perfect(), config));
  }
  names.set_managers(app, manager_ids);
  for (int i = 0; i < 3; ++i) {
    envs[static_cast<std::size_t>(i)]->run_sync(
        [&, i] { managers[static_cast<std::size_t>(i)]->manager().manage_app(app, manager_ids); });
  }

  std::vector<std::unique_ptr<proto::AppHost>> hosts;
  const std::vector<HostId> host_ids{HostId(100), HostId(101)};
  for (int i = 0; i < 2; ++i) {
    hosts.push_back(std::make_unique<proto::AppHost>(
        host_ids[static_cast<std::size_t>(i)], *envs[static_cast<std::size_t>(3 + i)],
        clk::LocalClock::perfect(), names, keys, config));
    envs[static_cast<std::size_t>(3 + i)]->run_sync([&, i] {
      hosts[static_cast<std::size_t>(i)]->controller().register_app(
          app, [](UserId, const std::string& p) { return p; });
    });
  }

  World w;
  for (int i = 0; i < 3; ++i) w.managers[i] = managers[static_cast<std::size_t>(i)].get();
  for (int i = 0; i < 2; ++i) w.hosts[i] = hosts[static_cast<std::size_t>(i)].get();
  w.on_manager = [&envs](int i, std::function<void()> fn) {
    envs[static_cast<std::size_t>(i)]->run_sync(std::move(fn));
  };
  w.on_host = [&envs](int i, std::function<void()> fn) {
    envs[static_cast<std::size_t>(3 + i)]->run_sync(std::move(fn));
  };
  w.await = [](std::mutex& mu, bool& done) {
    ASSERT_TRUE(eventually([&] {
      const std::lock_guard<std::mutex> lock(mu);
      return done;
    })) << "threaded script step never completed";
    // Grace period so side-effect traffic (revoke notifications) lands
    // before the next step reads state — 100 ms >> the 1 ms fabric delay.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  auto log = run_script(w, app, UserId(7), UserId(8));

  fabric.stop_all();  // silence every loop before modules are destroyed
  return log;
}

TEST(CrossRuntime, ScriptedDecisionSequencesMatch) {
  const std::vector<std::string> sim_log = run_on_sim();
  const std::vector<std::string> threaded_log = run_on_threads();

  EXPECT_EQ(sim_log, threaded_log);
  const std::vector<std::string> expected{
      "deny/quorum-denied", "allow/quorum-granted", "allow/cache-hit",
      "deny/quorum-denied", "deny/quorum-denied",
  };
  EXPECT_EQ(sim_log, expected);
}

// ------------------------------------------------- seed-determinism pin
//
// The refactor's contract: the runtime seam must not perturb the simulation.
// Same seed -> bit-identical trace hash, decision count, and event count,
// run to run — the in-process version of chaos_runner's --json comparison.

TEST(CrossRuntime, ChaosSeedsReplayBitIdentically) {
  for (const std::uint64_t seed : {1ULL, 17ULL, 99ULL}) {
    chaos::ChaosOptions opts;
    opts.seed = seed;
    opts.horizon = Duration::minutes(2);
    const chaos::ChaosResult a = chaos::run_chaos(opts);
    const chaos::ChaosResult b = chaos::run_chaos(opts);
    EXPECT_EQ(a.trace_hash, b.trace_hash) << "seed " << seed;
    EXPECT_EQ(a.decisions, b.decisions) << "seed " << seed;
    EXPECT_EQ(a.events_executed, b.events_executed) << "seed " << seed;
    EXPECT_EQ(a.violation_count, b.violation_count) << "seed " << seed;
  }
}

TEST(CrossRuntime, AdversarialChaosSeedsReplayBitIdentically) {
  chaos::ChaosOptions opts;
  opts.seed = 42;
  opts.horizon = Duration::minutes(2);
  opts.plan.byzantine = true;
  opts.plan.byzantine_max = 1;
  opts.plan.asymmetric = true;
  const chaos::ChaosResult a = chaos::run_chaos(opts);
  const chaos::ChaosResult b = chaos::run_chaos(opts);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

// --------------------------------------- EnvOptions / make_fabric error paths

// Operators see these exact strings (wan_node prints them verbatim), so the
// messages are pinned, not just "non-empty".

TEST(EnvOptionsErrors, ParseBackendRoundTripsAndRejectsUnknown) {
  for (const BackendKind kind :
       {BackendKind::kSim, BackendKind::kLoopback, BackendKind::kUdp,
        BackendKind::kReactor}) {
    BackendKind parsed = BackendKind::kSim;
    ASSERT_TRUE(parse_backend(to_cstring(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  BackendKind out = BackendKind::kUdp;
  EXPECT_FALSE(parse_backend("tcp", &out));
  EXPECT_EQ(out, BackendKind::kUdp);  // a failed parse leaves *out alone
}

TEST(EnvOptionsErrors, MakeFabricRejectsSimBackend) {
  EnvOptions opts;
  opts.backend = BackendKind::kSim;
  std::string error;
  EXPECT_EQ(make_fabric(opts, &error), nullptr);
  EXPECT_EQ(error, "backend 'sim' is not a fabric");
}

TEST(EnvOptionsErrors, MakeFabricReportsMissingTopologyFile) {
  for (const BackendKind kind : {BackendKind::kUdp, BackendKind::kReactor}) {
    EnvOptions opts;
    opts.backend = kind;
    opts.listen = "127.0.0.1:0";
    opts.topology_path = "/nonexistent/topology.txt";
    std::string error;
    EXPECT_EQ(make_fabric(opts, &error), nullptr);
    EXPECT_EQ(error, "cannot open topology file '/nonexistent/topology.txt'")
        << to_cstring(kind);
  }
}

TEST(EnvOptionsErrors, MakeFabricReportsBadListenAddress) {
  EnvOptions opts;
  opts.backend = BackendKind::kUdp;
  opts.listen = "no-port-here";
  std::string error;
  EXPECT_EQ(make_fabric(opts, &error), nullptr);
  EXPECT_EQ(error, "bad listen address 'no-port-here'");
}

}  // namespace
}  // namespace wan::runtime
