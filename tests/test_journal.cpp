// ManagerJournal tests: the append-only snapshot+log that makes a manager's
// ACL state survive kill -9. Pins the durability contract the proc-chaos
// orchestrator depends on:
//
//   * append → reopen → replay round-trips every record, in order;
//   * a torn tail (a record cut mid-write by a crash) is tolerated: replay
//     stops at the tear, and the repaired log accepts new appends;
//   * compaction folds the log into the snapshot (replay sees one record per
//     register, the log count resets);
//   * open() failures carry the exact messages wan_node prints to operators.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "acl/store.hpp"
#include "proto/journal.hpp"

namespace wan::proto {
namespace {

/// A fresh directory under the build tree's temp space for each test.
std::string fresh_dir(const char* name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "journal_" + name;
  std::remove((dir + "/app-1.snap").c_str());
  std::remove((dir + "/app-1.log").c_str());
  std::remove((dir + "/app-2.log").c_str());
  ::rmdir(dir.c_str());
  return dir;
}

acl::AclUpdate update(std::uint32_t user, std::uint64_t counter,
                      acl::Op op = acl::Op::kAdd,
                      acl::Right right = acl::Right::kUse,
                      std::uint32_t origin = 1, std::int64_t stamp = 100) {
  return acl::AclUpdate{UserId(user), right, op,
                        acl::Version{counter, HostId(origin), stamp}};
}

using Replayed = std::vector<std::pair<std::uint32_t, acl::AclUpdate>>;

Replayed replay_all(ManagerJournal& j) {
  Replayed out;
  j.replay([&](AppId app, const acl::AclUpdate& u) {
    out.emplace_back(app.value(), u);
  });
  return out;
}

TEST(ManagerJournal, FreshDirHasNoStateAndRoundTripsAppends) {
  const std::string dir = fresh_dir("roundtrip");
  std::string error;
  auto j = ManagerJournal::open(dir, &error);
  ASSERT_NE(j, nullptr) << error;
  EXPECT_FALSE(j->had_state());

  const acl::AclUpdate a = update(10, 1);
  const acl::AclUpdate b =
      update(11, 2, acl::Op::kRevoke, acl::Right::kManage, 2, -5);
  EXPECT_TRUE(j->append(AppId(1), a));
  EXPECT_TRUE(j->append(AppId(1), b));
  EXPECT_TRUE(j->append(AppId(2), update(12, 3)));
  EXPECT_EQ(j->log_records(AppId(1)), 2u);
  j.reset();

  auto j2 = ManagerJournal::open(dir, &error);
  ASSERT_NE(j2, nullptr) << error;
  EXPECT_TRUE(j2->had_state());
  const Replayed got = replay_all(*j2);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, 1u);
  EXPECT_EQ(got[0].second, a);
  EXPECT_EQ(got[1].second, b);
  EXPECT_EQ(got[2].first, 2u);
  EXPECT_EQ(j2->log_records(AppId(1)), 2u);
  EXPECT_EQ(j2->log_records(AppId(2)), 1u);
}

TEST(ManagerJournal, TornTailIsDroppedAndLogStaysAppendable) {
  const std::string dir = fresh_dir("torn");
  std::string error;
  {
    auto j = ManagerJournal::open(dir, &error);
    ASSERT_NE(j, nullptr) << error;
    EXPECT_TRUE(j->append(AppId(1), update(10, 1)));
    EXPECT_TRUE(j->append(AppId(1), update(10, 2)));
  }
  // Crash mid-write: chop the last record in half.
  const std::string log = dir + "/app-1.log";
  struct stat st{};
  ASSERT_EQ(::stat(log.c_str(), &st), 0);
  ASSERT_EQ(::truncate(log.c_str(), st.st_size - 17), 0);

  auto j2 = ManagerJournal::open(dir, &error);
  ASSERT_NE(j2, nullptr) << error;
  EXPECT_TRUE(j2->had_state());
  Replayed got = replay_all(*j2);
  ASSERT_EQ(got.size(), 1u);  // the torn second record is gone
  EXPECT_EQ(got[0].second.version.counter, 1u);

  // The repaired log accepts appends, and a third open sees both records.
  EXPECT_TRUE(j2->append(AppId(1), update(10, 3)));
  j2.reset();
  auto j3 = ManagerJournal::open(dir, &error);
  ASSERT_NE(j3, nullptr) << error;
  got = replay_all(*j3);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].second.version.counter, 3u);
}

TEST(ManagerJournal, CompactFoldsLogIntoSnapshot) {
  const std::string dir = fresh_dir("compact");
  std::string error;
  auto j = ManagerJournal::open(dir, &error);
  ASSERT_NE(j, nullptr) << error;

  // Ten updates to the same register; the live state is just the last one.
  for (std::uint64_t c = 1; c <= 10; ++c) {
    EXPECT_TRUE(j->append(AppId(1), update(10, c)));
  }
  acl::AclStore store;
  store.apply(update(10, 10));
  EXPECT_TRUE(j->compact(AppId(1), store.snapshot()));
  EXPECT_EQ(j->log_records(AppId(1)), 0u);

  // Post-compaction appends land in the (fresh) log.
  EXPECT_TRUE(j->append(AppId(1), update(11, 1)));
  j.reset();

  auto j2 = ManagerJournal::open(dir, &error);
  ASSERT_NE(j2, nullptr) << error;
  const Replayed got = replay_all(*j2);
  ASSERT_EQ(got.size(), 2u);  // snapshot record + one log record
  EXPECT_EQ(got[0].second.version.counter, 10u);
  EXPECT_EQ(got[1].second.user, UserId(11));
}

TEST(ManagerJournal, ReplayedStateMatchesStoreMerge) {
  const std::string dir = fresh_dir("merge");
  std::string error;
  acl::AclStore live;
  {
    auto j = ManagerJournal::open(dir, &error);
    ASSERT_NE(j, nullptr) << error;
    const std::vector<acl::AclUpdate> script = {
        update(10, 1), update(11, 1, acl::Op::kAdd, acl::Right::kManage),
        update(10, 2, acl::Op::kRevoke), update(12, 1),
        update(11, 2, acl::Op::kRevoke, acl::Right::kManage, 2)};
    for (const auto& u : script) {
      live.apply(u);
      EXPECT_TRUE(j->append(AppId(1), u));
    }
  }
  acl::AclStore restored;
  auto j2 = ManagerJournal::open(dir, &error);
  ASSERT_NE(j2, nullptr) << error;
  j2->replay([&](AppId, const acl::AclUpdate& u) { restored.apply(u); });
  EXPECT_EQ(restored.snapshot(), live.snapshot());
}

TEST(ManagerJournal, OpenErrorsArePinned) {
  // A regular file where the state dir should be.
  const std::string file = std::string(::testing::TempDir()) + "journal_plain";
  { std::ofstream out(file); out << "not a dir"; }
  std::string error;
  EXPECT_EQ(ManagerJournal::open(file, &error), nullptr);
  EXPECT_EQ(error, "state dir '" + file + "' is not a directory");

  // A path whose parent is that file: mkdir must fail, errno spelled out.
  const std::string nested = file + "/sub";
  error.clear();
  EXPECT_EQ(ManagerJournal::open(nested, &error), nullptr);
  EXPECT_EQ(error.rfind("cannot create state dir '" + nested + "': ", 0), 0u)
      << error;
  std::remove(file.c_str());
}

}  // namespace
}  // namespace wan::proto
