// Protocol behaviour under partitions (§3.2, §3.3): cache grace, time-bounded
// revocation, the R-attempt availability rule, quorum intersection under
// partitioned managers, the freeze strategy, and stale-response rejection.
#include <gtest/gtest.h>

#include <optional>

#include "workload/scenario.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using proto::DecisionPath;
using proto::DenyReason;
using proto::ExhaustedPolicy;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig scripted_config() {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 4;
  cfg.partitions = ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(60);
  cfg.protocol.clock_bound_b = 1.0;
  cfg.protocol.max_attempts = 3;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.seed = 7;
  return cfg;
}

AccessDecision run_check(Scenario& s, int host, UserId user,
                         Duration window = Duration::seconds(10)) {
  std::optional<AccessDecision> result;
  s.check(host, user, [&](const AccessDecision& d) { result = d; });
  s.run_for(window);
  EXPECT_TRUE(result.has_value());
  return result.value_or(AccessDecision{});
}

void cut_host_from_managers(Scenario& s, int host_idx) {
  for (const HostId m : s.manager_ids()) {
    s.scripted().cut_link(s.host_ids()[static_cast<std::size_t>(host_idx)], m);
  }
}

TEST(ProtoPartition, UnverifiableDeniedAfterRAttempts) {
  Scenario s(scripted_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  cut_host_from_managers(s, 0);
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kUnverifiableDeny);
  EXPECT_EQ(d.reason, DenyReason::kUnverifiable);
  EXPECT_EQ(d.attempts, 3);
  // O(R) delay claim: R attempts, each one query timeout long.
  EXPECT_NEAR(d.latency().to_seconds(), 3.0, 0.1);
}

TEST(ProtoPartition, HighAvailabilityRuleAllowsAfterR) {
  auto cfg = scripted_config();
  cfg.protocol.exhausted_policy = ExhaustedPolicy::kAllow;
  Scenario s(cfg);
  cut_host_from_managers(s, 0);
  // Even a never-granted user passes: Fig. 4 trades security for
  // availability by design.
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kDefaultAllow);
  EXPECT_EQ(d.attempts, 3);
}

TEST(ProtoPartition, DefaultAllowIsNotCached) {
  auto cfg = scripted_config();
  cfg.protocol.exhausted_policy = ExhaustedPolicy::kAllow;
  Scenario s(cfg);
  cut_host_from_managers(s, 0);
  run_check(s, 0, s.user(0));
  EXPECT_EQ(s.host(0).controller().cache(s.app())->size(), 0u);
  // The next access re-verifies (and defaults again).
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_EQ(d.path, DecisionPath::kDefaultAllow);
}

TEST(ProtoPartition, CachedRightsSurvivePartitionUntilExpiry) {
  Scenario s(scripted_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0), Duration::seconds(2));  // cache populated
  cut_host_from_managers(s, 0);
  // Well inside te: cache hit, no manager contact needed.
  s.run_for(Duration::seconds(20));
  const auto d = run_check(s, 0, s.user(0), Duration::seconds(2));
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kCacheHit);
  // Past te: entry gone, managers unreachable, denied.
  s.run_for(Duration::seconds(60));
  const auto d2 = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d2.allowed);
}

// THE security property (§3.2): a user revoked at quorum time t cannot be
// allowed anywhere after t + Te, even if the caching host never hears the
// revocation.
TEST(ProtoPartition, RevocationTimeBoundHoldsUnderPartition) {
  Scenario s(scripted_config());  // Te = 60s
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  run_check(s, 0, s.user(0), Duration::seconds(2));  // cached at ~5s

  cut_host_from_managers(s, 0);  // host 0 will never hear the RevokeNotify
  s.run_for(Duration::seconds(3));

  std::optional<double> quorum_at;
  s.revoke(s.user(0), 0, [&] { quorum_at = s.scheduler().now().to_seconds(); });
  s.run_for(Duration::seconds(2));
  ASSERT_TRUE(quorum_at.has_value());  // managers are still interconnected

  // Within the grace window the stale cache may still answer (permitted).
  const auto mid = run_check(s, 0, s.user(0), Duration::seconds(2));
  EXPECT_TRUE(mid.allowed);
  EXPECT_EQ(mid.path, DecisionPath::kCacheHit);

  // Drive past t_quorum + Te and verify the user is locked out.
  const double deadline = *quorum_at + 60.0;
  while (s.scheduler().now().to_seconds() < deadline + 0.5) {
    s.run_for(Duration::seconds(1));
  }
  const auto late = run_check(s, 0, s.user(0));
  EXPECT_FALSE(late.allowed);
}

TEST(ProtoPartition, CheckQuorumSurvivesMinorityManagerLoss) {
  Scenario s(scripted_config());  // C = 2, M = 3
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  // One manager unreachable from host 0: quorum of 2 still assembles.
  s.scripted().cut_link(s.host_ids()[0], s.manager_ids()[0]);
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kQuorumGranted);
}

TEST(ProtoPartition, CheckQuorumMFailsOnAnyManagerLoss) {
  auto cfg = scripted_config();
  cfg.protocol.check_quorum = 3;  // C = M
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.scripted().cut_link(s.host_ids()[0], s.manager_ids()[0]);
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kUnverifiableDeny);
}

TEST(ProtoPartition, UpdateQuorumBlocksWhilePeersUnreachable) {
  Scenario s(scripted_config());  // update quorum = 2 (issuer + 1 peer)
  s.scripted().isolate(s.manager_ids()[0], s.all_site_ids());
  bool fired = false;
  s.grant(s.user(0), 0, [&] { fired = true; });
  s.run_for(Duration::seconds(30));
  EXPECT_FALSE(fired);  // no peer reachable: quorum of 2 unattainable
  // Persistent dissemination: healing delivers the retransmitted update.
  s.scripted().heal_all();
  s.run_for(Duration::seconds(10));
  EXPECT_TRUE(fired);
  EXPECT_TRUE(s.manager(2).manager().store(s.app())->check(s.user(0),
                                                           acl::Right::kUse));
}

// Quorum intersection makes a completed revoke win against a stale manager:
// revoke reaches {m0, m1}; the host's check quorum {m1, m2} contains m1,
// whose fresher version must beat m2's stale grant.
TEST(ProtoPartition, FreshestVersionWinsAcrossQuorums) {
  Scenario s(scripted_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));

  // m2 stops hearing manager traffic (but stays reachable from hosts).
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[2]);
  s.scripted().cut_link(s.manager_ids()[1], s.manager_ids()[2]);

  bool quorum = false;
  s.revoke(s.user(0), 0, [&] { quorum = true; });
  s.run_for(Duration::seconds(5));
  ASSERT_TRUE(quorum);  // m0 + m1 form the update quorum of 2
  ASSERT_TRUE(s.manager(2).manager().store(s.app())->check(s.user(0),
                                                           acl::Right::kUse));

  // Host 0 can only reach m1 and m2 — the quorum straddles fresh and stale.
  s.scripted().cut_link(s.host_ids()[0], s.manager_ids()[0]);
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kQuorumDenied);
}

// The analysis assumes R = infinity ("access is only allowed if the check
// quorum of managers is reached"): with max_attempts = 0 a check never gives
// up — it blocks across the partition and completes after healing.
TEST(ProtoPartition, InfiniteRetriesBlockUntilHealed) {
  auto cfg = scripted_config();
  cfg.protocol.max_attempts = 0;  // R = infinity
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  cut_host_from_managers(s, 0);

  std::optional<AccessDecision> d;
  s.check(0, s.user(0), [&](const AccessDecision& dec) { d = dec; });
  s.run_for(Duration::minutes(5));
  EXPECT_FALSE(d.has_value());  // still retrying, no decision

  s.scripted().heal_all();
  s.run_for(Duration::seconds(10));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->allowed);
  EXPECT_GT(d->attempts, 100);  // it really was looping (Fig. 2's while)
}

// Regression test for version inversion: a revoke issued by a manager that
// never saw the grant (it was partitioned away while the grant completed)
// must still dominate it. The pre-write version read from a check quorum
// guarantees this — without it, the revoke picks a stale version, loses the
// last-writer-wins race everywhere, and the Te bound silently dissolves.
TEST(ProtoPartition, RevokeDominatesUnseenGrant) {
  Scenario s(scripted_config());  // M = 3, C = 2, update quorum = 2

  // m0 is cut off; the grant completes via m1 + m2.
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[1]);
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[2]);
  // Inflate the version counters m0 never sees.
  for (int i = 0; i < 5; ++i) {
    s.grant(s.user(1), 1);
    s.run_for(Duration::seconds(3));
  }
  bool grant_done = false;
  s.grant(s.user(0), 1, [&] { grant_done = true; });
  s.run_for(Duration::seconds(5));
  ASSERT_TRUE(grant_done);

  // m0 regains contact with m2 only, and immediately revokes user 0 while
  // its own store is far behind.
  s.scripted().heal_link(s.manager_ids()[0], s.manager_ids()[2]);
  bool revoke_done = false;
  s.revoke(s.user(0), 0, [&] { revoke_done = true; });
  s.run_for(Duration::seconds(10));
  ASSERT_TRUE(revoke_done);

  // The revoke must have superseded the grant wherever it has arrived...
  EXPECT_FALSE(s.manager(0).manager().store(s.app())->check(s.user(0),
                                                            acl::Right::kUse));
  EXPECT_FALSE(s.manager(2).manager().store(s.app())->check(s.user(0),
                                                            acl::Right::kUse));
  // ...and a host whose check quorum straddles fresh and stale managers
  // must deny (the freshest version is now the revoke's).
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d.allowed);
}

TEST(ProtoPartition, StaleResponsesFromEarlierAttemptsIgnored) {
  auto cfg = scripted_config();
  // Latency beyond the query timeout: every response arrives "too late"
  // (Fig. 3 only accepts responses before the timer fires).
  cfg.const_latency = Duration::from_seconds(1.5);
  cfg.protocol.query_timeout = Duration::seconds(1);
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(30));
  const auto d = run_check(s, 0, s.user(0), Duration::seconds(20));
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kUnverifiableDeny);
  EXPECT_EQ(d.attempts, 3);
}

// ---- Freeze strategy (§3.3 alternative) -----------------------------------

ScenarioConfig freeze_config() {
  auto cfg = scripted_config();
  cfg.protocol.freeze_enabled = true;
  cfg.protocol.Te = Duration::seconds(120);
  cfg.protocol.Ti = Duration::seconds(30);
  cfg.protocol.heartbeat_period = Duration::seconds(5);
  return cfg;
}

TEST(ProtoFreeze, ExpirySplitsBudget) {
  const auto cfg = freeze_config();
  // te = (Te - Ti) / b = 90s.
  EXPECT_DOUBLE_EQ(cfg.protocol.expiry_period().to_seconds(), 90.0);
}

TEST(ProtoFreeze, ManagersFreezeAfterPeerSilence) {
  Scenario s(freeze_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  EXPECT_FALSE(s.manager(1).manager().frozen(s.app()));

  // m0 vanishes behind a partition; after Ti the survivors freeze.
  s.scripted().isolate(s.manager_ids()[0], s.all_site_ids());
  s.run_for(Duration::seconds(31));
  EXPECT_TRUE(s.manager(1).manager().frozen(s.app()));
  EXPECT_TRUE(s.manager(2).manager().frozen(s.app()));

  // Frozen managers answer nothing: the check cannot assemble a quorum.
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.path, DecisionPath::kUnverifiableDeny);
}

TEST(ProtoFreeze, HealingUnfreezes) {
  Scenario s(freeze_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.scripted().isolate(s.manager_ids()[0], s.all_site_ids());
  s.run_for(Duration::seconds(40));
  ASSERT_TRUE(s.manager(1).manager().frozen(s.app()));

  s.scripted().heal_all();
  s.run_for(Duration::seconds(12));  // a couple of heartbeat rounds
  EXPECT_FALSE(s.manager(1).manager().frozen(s.app()));
  const auto d = run_check(s, 0, s.user(0));
  EXPECT_TRUE(d.allowed);
}

TEST(ProtoFreeze, NoFreezeWhileAllReachable) {
  Scenario s(freeze_config());
  s.grant(s.user(0));
  s.run_for(Duration::minutes(5));  // far beyond Ti with healthy heartbeats
  EXPECT_FALSE(s.manager(0).manager().frozen(s.app()));
  EXPECT_TRUE(run_check(s, 0, s.user(0)).allowed);
}

}  // namespace
}  // namespace wan
