// UdpTransport tests: two ThreadedEnvs in one process, each behind its own
// UdpTransport on a 127.0.0.1 ephemeral port, exchanging real datagrams
// through the wire codec. Covers delivery onto the destination loop,
// topology parsing, the add_peer patch path, one-way inbound blocking (the
// partition primitive of the multi-process smoke), and every labelled drop
// counter on the send path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "net/codec.hpp"
#include "obs/metrics.hpp"
#include "proto/messages.hpp"
#include "proto/wire.hpp"
#include "runtime/threaded_env.hpp"
#include "runtime/udp_transport.hpp"

namespace wan::runtime {
namespace {

bool eventually(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::uint64_t drop_count(const char* reason) {
  return obs::Registry::global()
      .counter(std::string("wan_udp_drops_total{reason=\"") + reason + "\"}")
      .value();
}

std::unique_ptr<UdpTransport> make_transport() {
  EnvOptions opts;
  opts.listen = "127.0.0.1:0";
  std::string error;
  auto t = UdpTransport::create(opts, &error);
  EXPECT_NE(t, nullptr) << error;
  return t;
}

/// Two single-node processes' worth of plumbing, minus the processes: A and
/// B each get their own socket, env, and endpoint, cross-wired via add_peer.
struct Pair {
  Pair() {
    proto::register_wire_messages();
    a = make_transport();
    b = make_transport();
    a->add_peer(HostId(2), NodeAddress{"127.0.0.1", b->local_port()});
    b->add_peer(HostId(1), NodeAddress{"127.0.0.1", a->local_port()});
    env_a = std::make_unique<ThreadedEnv>(*a);
    env_b = std::make_unique<ThreadedEnv>(*b);
  }
  ~Pair() {
    a->shutdown();
    b->shutdown();
  }

  std::unique_ptr<UdpTransport> a, b;
  std::unique_ptr<ThreadedEnv> env_a, env_b;
};

TEST(UdpTransport, DeliversAcrossRealSockets) {
  Pair pair;
  std::atomic<int> received{0};
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint32_t> from_value{0};
  pair.env_b->transport().register_endpoint(
      HostId(2), [&](HostId from, const net::MessagePtr& msg) {
        from_value = from.value();
        seq = static_cast<const proto::HeartbeatPing&>(*msg).seq;
        received.fetch_add(1);
      });
  pair.env_a->transport().register_endpoint(
      HostId(1), [](HostId, const net::MessagePtr&) {});

  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(7), 4242));
  });
  ASSERT_TRUE(eventually([&] { return received.load() == 1; }));
  EXPECT_EQ(from_value.load(), 1u);
  EXPECT_EQ(seq.load(), 4242u);
}

TEST(UdpTransport, RoundTripRequestReply) {
  Pair pair;
  std::atomic<int> replies{0};
  // B echoes every ping back as a pong; A counts pongs. This exercises both
  // directions of both sockets and the recv->loop->send chain.
  pair.env_b->transport().register_endpoint(
      HostId(2), [&](HostId from, const net::MessagePtr& msg) {
        const auto& ping = static_cast<const proto::HeartbeatPing&>(*msg);
        pair.env_b->transport().send(
            HostId(2), from,
            net::make_message<proto::HeartbeatPong>(ping.app, ping.seq));
      });
  pair.env_a->transport().register_endpoint(
      HostId(1), [&](HostId, const net::MessagePtr& msg) {
        if (static_cast<const proto::HeartbeatPong&>(*msg).seq == 5) {
          replies.fetch_add(1);
        }
      });
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 5));
  });
  ASSERT_TRUE(eventually([&] { return replies.load() == 1; }));
}

TEST(UdpTransport, BlockInboundFromDropsOneDirectionOnly) {
  Pair pair;
  std::atomic<int> at_b{0};
  std::atomic<int> at_a{0};
  pair.env_b->transport().register_endpoint(
      HostId(2),
      [&](HostId, const net::MessagePtr&) { at_b.fetch_add(1); });
  pair.env_a->transport().register_endpoint(
      HostId(1),
      [&](HostId, const net::MessagePtr&) { at_a.fetch_add(1); });

  const std::uint64_t blocked_before = drop_count("blocked");
  pair.b->block_inbound_from(HostId(1), true);
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 1));
  });
  // The blocked frame still arrives at B's socket and is counted there.
  ASSERT_TRUE(
      eventually([&] { return drop_count("blocked") > blocked_before; }));
  EXPECT_EQ(at_b.load(), 0);

  // The reverse direction is unaffected: a one-way partition, not a cut link.
  pair.env_b->run_sync([&] {
    pair.env_b->transport().send(
        HostId(2), HostId(1),
        net::make_message<proto::HeartbeatPong>(AppId(1), 2));
  });
  ASSERT_TRUE(eventually([&] { return at_a.load() == 1; }));

  pair.b->block_inbound_from(HostId(1), false);
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 3));
  });
  ASSERT_TRUE(eventually([&] { return at_b.load() == 1; }));
}

TEST(UdpTransport, SendPathDropReasonsAreCounted) {
  Pair pair;
  pair.env_a->transport().register_endpoint(
      HostId(1), [](HostId, const net::MessagePtr&) {});

  // No route for the destination id.
  const std::uint64_t unknown_before = drop_count("unknown_dest");
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(77),
        net::make_message<proto::HeartbeatPing>(AppId(1), 1));
  });
  EXPECT_EQ(drop_count("unknown_dest"), unknown_before + 1);

  // Sending from an id that never attached (or is marked down).
  const std::uint64_t down_before = drop_count("endpoint_down");
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(99), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 1));
  });
  EXPECT_EQ(drop_count("endpoint_down"), down_before + 1);

  // A payload that cannot fit one datagram.
  const std::uint64_t oversize_before = drop_count("oversize");
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::InvokeRequest>(
            AppId(1), UserId(2), 3, 4, auth::Signature{5},
            std::string(net::kMaxFrameSize, 'x'), 6));
  });
  EXPECT_EQ(drop_count("oversize"), oversize_before + 1);
}

TEST(UdpTransport, DownEndpointDropsInboundDeliveries) {
  Pair pair;
  std::atomic<int> at_b{0};
  pair.env_b->transport().register_endpoint(
      HostId(2),
      [&](HostId, const net::MessagePtr&) { at_b.fetch_add(1); });
  pair.env_a->transport().register_endpoint(
      HostId(1), [](HostId, const net::MessagePtr&) {});

  const std::uint64_t down_before = drop_count("endpoint_down");
  pair.env_b->transport().set_endpoint_down(HostId(2), true);
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 1));
  });
  ASSERT_TRUE(
      eventually([&] { return drop_count("endpoint_down") > down_before; }));
  EXPECT_EQ(at_b.load(), 0);

  pair.env_b->transport().set_endpoint_down(HostId(2), false);
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 2));
  });
  ASSERT_TRUE(eventually([&] { return at_b.load() == 1; }));
}

// ------------------------------------------------------------- Topology

TEST(Topology, ParsesEntriesAndComments) {
  std::istringstream in(
      "# deployment of three\n"
      "0 127.0.0.1:9000\n"
      "\n"
      "100 node-a.example:9001   # app host\n"
      "9000 127.0.0.1:9002\n");
  std::string error;
  const auto topo = Topology::parse(in, &error);
  ASSERT_TRUE(topo.has_value()) << error;
  EXPECT_EQ(topo->size(), 3u);
  ASSERT_NE(topo->find(HostId(100)), nullptr);
  EXPECT_EQ(topo->find(HostId(100))->host, "node-a.example");
  EXPECT_EQ(topo->find(HostId(100))->port, 9001);
  EXPECT_EQ(topo->find(HostId(5)), nullptr);
}

TEST(Topology, SerializeRoundTrips) {
  Topology topo;
  topo.add(HostId(3), NodeAddress{"127.0.0.1", 1234});
  topo.add(HostId(1), NodeAddress{"example.org", 80});
  std::istringstream in(topo.serialize());
  std::string error;
  const auto again = Topology::parse(in, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->entries(), topo.entries());
}

TEST(Topology, RejectsMalformedLines) {
  const char* bad_inputs[] = {
      "not-a-number 127.0.0.1:1\n",  // unparseable id
      "1 127.0.0.1\n",               // missing port
      "1 127.0.0.1:99999\n",         // port out of range
      "1 :5\n",                      // empty host
      "1 127.0.0.1:5 trailing\n",    // trailing non-comment text
      "1 127.0.0.1:5\n1 127.0.0.1:6\n",  // duplicate id
  };
  for (const char* text : bad_inputs) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(Topology::parse(in, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Topology, ParseNodeAddress) {
  const auto ok = parse_node_address("10.1.2.3:8080");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->host, "10.1.2.3");
  EXPECT_EQ(ok->port, 8080);
  EXPECT_FALSE(parse_node_address("nocolon").has_value());
  EXPECT_FALSE(parse_node_address(":80").has_value());
  EXPECT_FALSE(parse_node_address("h:").has_value());
  EXPECT_FALSE(parse_node_address("h:65536").has_value());
  EXPECT_FALSE(parse_node_address("h:12x").has_value());
}

TEST(UdpTransport, CreateRejectsBadOptions) {
  proto::register_wire_messages();
  {
    EnvOptions opts;
    opts.listen = "not-an-address";
    std::string error;
    EXPECT_EQ(UdpTransport::create(opts, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
  {
    EnvOptions opts;
    opts.listen = "127.0.0.1:0";
    opts.topology_path = "/nonexistent/topology.txt";
    std::string error;
    EXPECT_EQ(UdpTransport::create(opts, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
}

TEST(UdpTransport, ShutdownIsIdempotentAndStopsEnvs) {
  auto t = make_transport();
  auto env = std::make_unique<ThreadedEnv>(*t);
  env->transport().register_endpoint(HostId(1),
                                     [](HostId, const net::MessagePtr&) {});
  t->shutdown();
  t->shutdown();  // second call must be a no-op
  // The env was stopped by shutdown(); destroying it after must not hang.
  env.reset();
}

}  // namespace
}  // namespace wan::runtime
