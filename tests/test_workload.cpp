// Unit tests for the metrics layer (histogram, ground truth, collector
// classification) and the workload driver/probes.
#include <gtest/gtest.h>

#include "metrics/collector.hpp"
#include "metrics/ground_truth.hpp"
#include "metrics/histogram.hpp"
#include "workload/driver.hpp"
#include "workload/scenario.hpp"

namespace wan {
namespace {

using metrics::Collector;
using metrics::DecisionClass;
using metrics::GroundTruth;
using metrics::Histogram;
using proto::AccessDecision;
using proto::DecisionPath;
using sim::Duration;
using sim::TimePoint;

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), 0.0);
}

TEST(Histogram, MeanMinMax) {
  Histogram h;
  h.record_seconds(1.0);
  h.record_seconds(2.0);
  h.record_seconds(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 3.0);
}

TEST(Histogram, QuantilesApproximate) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record_seconds(i * 0.001);  // 1ms..1s
  // Log-linear buckets: ~10% relative error budget.
  EXPECT_NEAR(h.quantile_seconds(0.5), 0.5, 0.06);
  EXPECT_NEAR(h.quantile_seconds(0.99), 0.99, 0.11);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(1.0), h.max_seconds());
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.record_seconds(1.0);
  b.record_seconds(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(a.max_seconds(), 3.0);
}

TEST(Histogram, NegativeClampedToZero) {
  Histogram h;
  h.record(Duration::seconds(-5));
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0);
}

TEST(GroundTruth, AuthorizedFollowsTimeline) {
  GroundTruth truth;
  const AppId app(1);
  const UserId u(1);
  const auto t = [](int s) { return TimePoint{} + Duration::seconds(s); };
  truth.record(app, u, acl::Right::kUse, true, t(10));
  truth.record(app, u, acl::Right::kUse, false, t(20));
  truth.record(app, u, acl::Right::kUse, true, t(30));

  EXPECT_FALSE(truth.authorized(app, u, acl::Right::kUse, t(5)));
  EXPECT_TRUE(truth.authorized(app, u, acl::Right::kUse, t(10)));
  EXPECT_TRUE(truth.authorized(app, u, acl::Right::kUse, t(15)));
  EXPECT_FALSE(truth.authorized(app, u, acl::Right::kUse, t(25)));
  EXPECT_TRUE(truth.authorized(app, u, acl::Right::kUse, t(35)));
}

TEST(GroundTruth, UnknownUserNeverAuthorized) {
  GroundTruth truth;
  EXPECT_FALSE(truth.authorized(AppId(1), UserId(9), acl::Right::kUse,
                                TimePoint{} + Duration::seconds(1)));
}

TEST(GroundTruth, WindowQueries) {
  GroundTruth truth;
  const AppId app(1);
  const UserId u(1);
  const auto t = [](int s) { return TimePoint{} + Duration::seconds(s); };
  truth.record(app, u, acl::Right::kUse, true, t(10));
  truth.record(app, u, acl::Right::kUse, false, t(20));

  // Authorized at the window start.
  EXPECT_TRUE(truth.authorized_in_window(app, u, acl::Right::kUse, t(15), t(25)));
  // Grant event inside the window.
  EXPECT_TRUE(truth.authorized_in_window(app, u, acl::Right::kUse, t(5), t(12)));
  // Entirely unauthorized window.
  EXPECT_FALSE(truth.authorized_in_window(app, u, acl::Right::kUse, t(25), t(40)));
  EXPECT_FALSE(truth.authorized_in_window(app, u, acl::Right::kUse, t(0), t(9)));
}

TEST(GroundTruth, UnauthorizedSinceFindsRevokeStart) {
  GroundTruth truth;
  const AppId app(1);
  const UserId u(1);
  const auto t = [](int s) { return TimePoint{} + Duration::seconds(s); };
  truth.record(app, u, acl::Right::kUse, true, t(10));
  truth.record(app, u, acl::Right::kUse, false, t(20));
  truth.record(app, u, acl::Right::kUse, false, t(25));  // re-revoke (no-op)

  EXPECT_FALSE(truth.unauthorized_since(app, u, acl::Right::kUse, t(15)).has_value());
  const auto since = truth.unauthorized_since(app, u, acl::Right::kUse, t(30));
  ASSERT_TRUE(since.has_value());
  EXPECT_EQ(*since, t(20));  // the FIRST revoke of the stretch
  // Never-granted users have no revoke to blame.
  EXPECT_FALSE(truth.unauthorized_since(app, u, acl::Right::kUse, t(5)).has_value());
}

AccessDecision make_decision(bool allowed, int req_s, int dec_s) {
  AccessDecision d;
  d.app = AppId(1);
  d.user = UserId(1);
  d.requested = TimePoint{} + Duration::seconds(req_s);
  d.decided = TimePoint{} + Duration::seconds(dec_s);
  d.allowed = allowed;
  d.path = allowed ? DecisionPath::kQuorumGranted : DecisionPath::kQuorumDenied;
  return d;
}

struct CollectorFixture : ::testing::Test {
  GroundTruth truth;
  Collector collector{truth, Duration::seconds(60)};  // Te = 60

  void SetUp() override {
    const auto t = [](int s) { return TimePoint{} + Duration::seconds(s); };
    truth.record(AppId(1), UserId(1), acl::Right::kUse, true, t(0));
    truth.record(AppId(1), UserId(1), acl::Right::kUse, false, t(100));
  }
};

TEST_F(CollectorFixture, LegitAllowed) {
  EXPECT_EQ(collector.observe(make_decision(true, 50, 51)),
            DecisionClass::kLegitAllowed);
  EXPECT_DOUBLE_EQ(collector.report().availability(), 1.0);
}

TEST_F(CollectorFixture, LegitDeniedIsAvailabilityViolation) {
  EXPECT_EQ(collector.observe(make_decision(false, 50, 53)),
            DecisionClass::kLegitDenied);
  EXPECT_DOUBLE_EQ(collector.report().availability(), 0.0);
}

TEST_F(CollectorFixture, UnauthorizedDenied) {
  EXPECT_EQ(collector.observe(make_decision(false, 200, 201)),
            DecisionClass::kUnauthDenied);
  EXPECT_DOUBLE_EQ(collector.report().security(), 1.0);
}

TEST_F(CollectorFixture, GraceWindowAllowedWithinTe) {
  // Allowed at t=130: revoked at 100, within 60s grace.
  EXPECT_EQ(collector.observe(make_decision(true, 130, 131)),
            DecisionClass::kUnauthAllowedGrace);
  EXPECT_EQ(collector.report().security_violations, 0u);
}

TEST_F(CollectorFixture, BeyondGraceIsSecurityViolation) {
  // Allowed at t=170: revoke quorum + Te = 160 < 170.
  EXPECT_EQ(collector.observe(make_decision(true, 170, 171)),
            DecisionClass::kSecurityViolation);
  EXPECT_LT(collector.report().security(), 1.0);
}

TEST_F(CollectorFixture, NeverGrantedAllowedIsViolation) {
  AccessDecision d = make_decision(true, 50, 51);
  d.user = UserId(9);  // no timeline at all
  EXPECT_EQ(collector.observe(d), DecisionClass::kSecurityViolation);
}

TEST_F(CollectorFixture, RevokeLandingMidCheckJudgedAtRequestTime) {
  // Requested at 99 (authorized), decided at 101 (just revoked): counts as
  // legitimate, not as a violation of any kind.
  EXPECT_EQ(collector.observe(make_decision(true, 99, 101)),
            DecisionClass::kLegitAllowed);
}

TEST_F(CollectorFixture, LatencyTrackedPerPath) {
  collector.observe(make_decision(true, 50, 53));
  EXPECT_EQ(collector.latency(DecisionPath::kQuorumGranted).count(), 1u);
  EXPECT_NEAR(collector.latency(DecisionPath::kQuorumGranted).mean_seconds(),
              3.0, 0.4);
  EXPECT_EQ(collector.path_count(DecisionPath::kQuorumGranted), 1u);
  EXPECT_EQ(collector.path_count(DecisionPath::kCacheHit), 0u);
}

TEST_F(CollectorFixture, ResetClears) {
  collector.observe(make_decision(true, 50, 51));
  collector.reset();
  EXPECT_EQ(collector.report().total, 0u);
  EXPECT_EQ(collector.all_latency().count(), 0u);
}

// ---------------------------------------------------------------- driver

TEST(Driver, GeneratesLoadAndOps) {
  workload::ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 10;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.seed = 5;
  workload::Scenario s(cfg);
  workload::DriverConfig dcfg;
  dcfg.access_rate_per_host = 5.0;
  dcfg.manager_ops_per_second = 0.5;
  workload::Driver driver(s, dcfg, 99);
  driver.start();
  s.run_for(Duration::minutes(10));
  driver.stop();
  s.run_for(Duration::seconds(30));  // drain in-flight checks

  // Poisson(5/s) per host over 600s across 2 hosts ~ 6000 accesses.
  EXPECT_NEAR(static_cast<double>(driver.accesses_issued()), 6000.0, 400.0);
  EXPECT_GT(driver.grants_issued(), 10u);
  EXPECT_GT(driver.revokes_issued(), 10u);
  EXPECT_EQ(s.collector().report().total, driver.accesses_issued());
  // Healthy network, deny policy: nothing can violate the bound. Availability
  // is just shy of 1.0: a grant is "legitimate" from the instant a manager
  // accepts it, but checks racing the grant's version-read + dissemination
  // window (a few RTTs) are still denied.
  EXPECT_EQ(s.collector().report().security_violations, 0u);
  EXPECT_GT(s.collector().report().availability(), 0.995);
}

TEST(Driver, ZipfSkewsPopularity) {
  workload::ScenarioConfig cfg;
  cfg.managers = 1;
  cfg.app_hosts = 1;
  cfg.users = 10;
  cfg.constant_latency = true;
  cfg.protocol.check_quorum = 1;
  cfg.seed = 6;
  workload::Scenario s(cfg);
  workload::DriverConfig dcfg;
  dcfg.zipf_s = 1.2;
  dcfg.manager_ops_per_second = 0.0;
  dcfg.initially_granted = 1.0;
  workload::Driver driver(s, dcfg, 77);
  driver.start();
  s.run_for(Duration::minutes(30));

  // With s=1.2, user 0 should dominate the cache-hit traffic; sanity-check
  // via the cache stats: far more hits than users.
  const auto* cache = s.host(0).controller().cache(s.app());
  EXPECT_GT(cache->stats().hits, cache->stats().misses * 3);
}

}  // namespace
}  // namespace wan
