// ReliableChannel tests: the ack/retransmit/dedup layer over the socket
// fabrics must turn lossy UDP into exactly-once delivery for reliable
// messages — and must do so identically on both backends. Pins:
//
//   * injected loss on the receive side is recovered by retransmission, and
//     recovery never double-delivers (udp and reactor);
//   * duplicated frames are shed by the receive-side dedup, counted;
//   * a queue-full shed of a reliable frame is recovered by the next
//     retransmit (the PR's silent-overflow regression: the bounded outbound
//     queue used to drop reliable messages irrecoverably);
//   * a peer that never acks exhausts the retry budget and fires the
//     peer_unreachable upcall exactly once per abandoned sweep;
//   * heartbeats stay best-effort: they bypass the channel entirely.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/codec.hpp"
#include "obs/metrics.hpp"
#include "proto/messages.hpp"
#include "proto/wire.hpp"
#include "runtime/reactor_transport.hpp"
#include "runtime/reliable_channel.hpp"
#include "runtime/threaded_env.hpp"
#include "runtime/udp_transport.hpp"

namespace wan::runtime {
namespace {

bool eventually(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

std::uint64_t drop_count(const char* reason) {
  return counter_value(
      (std::string("wan_udp_drops_total{reason=\"") + reason + "\"}").c_str());
}

/// Channel knobs tuned for test speed: fast first retransmit, low ceiling.
ReliabilityOptions fast_reliability(int retry_budget = 50) {
  ReliabilityOptions r;
  r.enabled = true;
  r.initial_rto = sim::Duration::millis(10);
  r.max_rto = sim::Duration::millis(40);
  r.retry_budget = retry_budget;
  r.jitter_seed = 7;
  return r;
}

template <typename Transport>
std::unique_ptr<Transport> make_reliable_transport(
    const ReliabilityOptions& r, std::size_t send_queue_limit = 1024) {
  EnvOptions opts;
  opts.listen = "127.0.0.1:0";
  opts.reliability = r;
  opts.send_queue_limit = send_queue_limit;
  std::string error;
  auto t = Transport::create(opts, &error);
  EXPECT_NE(t, nullptr) << error;
  return t;
}

/// Host 1 (a) and host 2 (b) cross-wired with the reliability layer on.
/// Collects the read_ids of every VersionQuery delivered at b.
template <typename Transport>
struct ReliablePair {
  explicit ReliablePair(const ReliabilityOptions& r,
                        std::size_t a_queue_limit = 1024) {
    proto::register_wire_messages();
    a = make_reliable_transport<Transport>(r, a_queue_limit);
    b = make_reliable_transport<Transport>(r);
    a->add_peer(HostId(2), NodeAddress{"127.0.0.1", b->local_port()});
    b->add_peer(HostId(1), NodeAddress{"127.0.0.1", a->local_port()});
    env_a = std::make_unique<ThreadedEnv>(*a);
    env_b = std::make_unique<ThreadedEnv>(*b);
    env_a->transport().register_endpoint(HostId(1),
                                         [](HostId, const net::MessagePtr&) {});
    env_b->transport().register_endpoint(
        HostId(2), [this](HostId, const net::MessagePtr& msg) {
          const std::lock_guard<std::mutex> lock(mu);
          delivered.push_back(
              static_cast<const proto::VersionQuery&>(*msg).read_id);
        });
  }
  ~ReliablePair() {
    a->shutdown();
    b->shutdown();
  }

  void send_queries(int count) {
    env_a->run_sync([&] {
      for (int i = 0; i < count; ++i) {
        env_a->transport().send(
            HostId(1), HostId(2),
            net::make_message<proto::VersionQuery>(
                AppId(1), static_cast<std::uint64_t>(i)));
      }
    });
  }

  std::size_t delivered_count() {
    const std::lock_guard<std::mutex> lock(mu);
    return delivered.size();
  }
  std::set<std::uint64_t> delivered_distinct() {
    const std::lock_guard<std::mutex> lock(mu);
    return {delivered.begin(), delivered.end()};
  }

  std::unique_ptr<Transport> a, b;
  std::unique_ptr<ThreadedEnv> env_a, env_b;
  std::mutex mu;
  std::vector<std::uint64_t> delivered;
};

// Injected loss on the receiver sheds ~30% of data frames (and their
// retransmissions, independently); the channel delivers every message anyway,
// exactly once, and quiesces once everything is acked.
template <typename Transport>
void run_loss_recovery() {
  constexpr int kMessages = 50;
  ReliablePair<Transport> pair(fast_reliability());
  FaultPlan plan;
  plan.seed = 11;
  plan.loss = 0.3;
  pair.b->set_fault_plan(plan);

  const std::uint64_t retransmits_before = counter_value("wan_retransmits_total");
  pair.send_queries(kMessages);

  ASSERT_TRUE(eventually(
      [&] { return pair.delivered_distinct().size() == kMessages; }, 20000));
  // Exactly once: no read_id arrives twice.
  EXPECT_EQ(pair.delivered_count(), static_cast<std::size_t>(kMessages));
  // Loss at 30% over 50 messages makes at least one retransmission all but
  // certain (the seeded plan makes it deterministic in fact).
  EXPECT_GT(counter_value("wan_retransmits_total"), retransmits_before);
  // Acks drain the send flow.
  ASSERT_TRUE(eventually(
      [&] { return pair.a->reliable_channel()->in_flight() == 0; }, 20000));
}

TEST(ReliableChannel, LossRecoveredExactlyOnceUdp) {
  run_loss_recovery<UdpTransport>();
}

TEST(ReliableChannel, LossRecoveredExactlyOnceReactor) {
  run_loss_recovery<ReactorTransport>();
}

// Every inbound frame duplicated: the dedup watermark drops the copies and
// counts them; delivery stays exactly-once.
TEST(ReliableChannel, DuplicatedFramesAreDedupedAndCounted) {
  constexpr int kMessages = 10;
  ReliablePair<UdpTransport> pair(fast_reliability());
  FaultPlan plan;
  plan.seed = 3;
  plan.duplicate = 1.0;
  pair.b->set_fault_plan(plan);

  const std::uint64_t dups_before = counter_value("wan_dup_drops_total");
  pair.send_queries(kMessages);

  ASSERT_TRUE(eventually(
      [&] { return pair.delivered_distinct().size() == kMessages; }));
  EXPECT_TRUE(eventually([&] {
    return counter_value("wan_dup_drops_total") >=
           dups_before + static_cast<std::uint64_t>(kMessages);
  }));
  // The duplicates never reach the endpoint.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(pair.delivered_count(), static_cast<std::size_t>(kMessages));
}

// The silent-overflow regression: with a 2-frame outbound queue, a burst of
// reliable sends sheds most first transmissions as queue_full. Before the
// channel existed those messages were simply gone; now the retransmit timer
// re-enqueues until every one of them lands.
TEST(ReliableChannel, QueueFullShedIsRecoveredByRetransmit) {
  constexpr int kMessages = 40;
  ReliablePair<UdpTransport> pair(fast_reliability(/*retry_budget=*/200),
                                  /*a_queue_limit=*/2);

  const std::uint64_t full_before = drop_count("queue_full");
  pair.send_queries(kMessages);

  // The burst overran the 2-slot queue...
  ASSERT_TRUE(eventually([&] { return drop_count("queue_full") > full_before; }));
  // ...and retransmission still delivers every message exactly once.
  ASSERT_TRUE(eventually(
      [&] { return pair.delivered_distinct().size() == kMessages; }, 30000));
  EXPECT_EQ(pair.delivered_count(), static_cast<std::size_t>(kMessages));
  ASSERT_TRUE(eventually(
      [&] { return pair.a->reliable_channel()->in_flight() == 0; }, 30000));
}

// A peer that receives but never acks (a raw socket, not a transport):
// after retry_budget transmissions the frame is abandoned, the expired
// counter moves, and the upcall names the peer.
TEST(ReliableChannel, PeerUnreachableFiresAfterRetryBudget) {
  proto::register_wire_messages();
  // A sink that swallows datagrams without ever answering.
  const int sink_fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(sink_fd, 0);
  sockaddr_in sink_addr{};
  sink_addr.sin_family = AF_INET;
  sink_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sink_addr.sin_port = 0;
  ASSERT_EQ(::bind(sink_fd, reinterpret_cast<const sockaddr*>(&sink_addr),
                   sizeof sink_addr),
            0);
  socklen_t len = sizeof sink_addr;
  ASSERT_EQ(::getsockname(sink_fd, reinterpret_cast<sockaddr*>(&sink_addr),
                          &len),
            0);

  auto t = make_reliable_transport<UdpTransport>(
      fast_reliability(/*retry_budget=*/3));
  std::atomic<std::uint32_t> dead_peer{0};
  std::atomic<std::size_t> abandoned{0};
  t->set_peer_unreachable([&](HostId peer, std::size_t count) {
    dead_peer = peer.value();
    abandoned = count;
  });
  t->add_peer(HostId(2),
              NodeAddress{"127.0.0.1", ntohs(sink_addr.sin_port)});
  auto env = std::make_unique<ThreadedEnv>(*t);
  env->transport().register_endpoint(HostId(1),
                                     [](HostId, const net::MessagePtr&) {});

  const std::uint64_t expired_before =
      counter_value("wan_reliable_expired_total");
  env->run_sync([&] {
    env->transport().send(HostId(1), HostId(2),
                          net::make_message<proto::VersionQuery>(AppId(1), 9));
  });

  ASSERT_TRUE(eventually([&] { return dead_peer.load() == 2u; }));
  EXPECT_EQ(abandoned.load(), 1u);
  EXPECT_EQ(counter_value("wan_reliable_expired_total"), expired_before + 1);
  ASSERT_TRUE(
      eventually([&] { return t->reliable_channel()->in_flight() == 0; }));
  t->shutdown();
  ::close(sink_fd);
}

// Heartbeats (reliable() == false) bypass the channel: they deliver on the
// raw path and never enter the in-flight table or the retransmit schedule.
TEST(ReliableChannel, HeartbeatsBypassTheChannel) {
  ReliablePair<UdpTransport> pair(fast_reliability());
  std::atomic<int> pings{0};
  pair.env_b->transport().register_endpoint(
      HostId(2), [&](HostId, const net::MessagePtr&) { pings.fetch_add(1); });

  const std::uint64_t retransmits_before =
      counter_value("wan_retransmits_total");
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 1));
  });
  ASSERT_TRUE(eventually([&] { return pings.load() == 1; }));
  EXPECT_EQ(pair.a->reliable_channel()->in_flight(), 0u);
  // Nothing to retransmit: the ping was never tracked.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(counter_value("wan_retransmits_total"), retransmits_before);
}

// Reliable traffic in both directions at once: each side's data frames
// piggyback acks for the reverse flow, both sides drain, and both deliver
// exactly once.
TEST(ReliableChannel, BidirectionalTrafficDrainsBothFlows) {
  constexpr int kEach = 20;
  ReliablePair<UdpTransport> pair(fast_reliability());
  std::mutex mu;
  std::set<std::uint64_t> at_a;
  pair.env_a->transport().register_endpoint(
      HostId(1), [&](HostId, const net::MessagePtr& msg) {
        const std::lock_guard<std::mutex> lock(mu);
        at_a.insert(static_cast<const proto::VersionQuery&>(*msg).read_id);
      });

  pair.send_queries(kEach);
  pair.env_b->run_sync([&] {
    for (int i = 0; i < kEach; ++i) {
      pair.env_b->transport().send(
          HostId(2), HostId(1),
          net::make_message<proto::VersionQuery>(
              AppId(1), static_cast<std::uint64_t>(100 + i)));
    }
  });

  ASSERT_TRUE(eventually([&] {
    const std::lock_guard<std::mutex> lock(mu);
    return at_a.size() == static_cast<std::size_t>(kEach);
  }));
  ASSERT_TRUE(eventually(
      [&] { return pair.delivered_distinct().size() == kEach; }));
  ASSERT_TRUE(eventually([&] {
    return pair.a->reliable_channel()->in_flight() == 0 &&
           pair.b->reliable_channel()->in_flight() == 0;
  }));
}

}  // namespace
}  // namespace wan::runtime
