// Unit tests: scheduler ordering/cancellation, timers, crash/recovery
// lifecycle process.
#include <gtest/gtest.h>

#include <vector>

#include "sim/lifecycle.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace wan::sim {
namespace {

TEST(Time, DurationArithmetic) {
  const Duration d = Duration::seconds(2) + Duration::millis(500);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 2.5);
  EXPECT_EQ((d - Duration::millis(500)).count_nanos(),
            Duration::seconds(2).count_nanos());
  EXPECT_EQ((Duration::seconds(3) / 3).count_nanos(),
            Duration::seconds(1).count_nanos());
  EXPECT_DOUBLE_EQ(Duration::seconds(3) / Duration::seconds(2), 1.5);
  EXPECT_TRUE((-Duration::seconds(1)).is_negative());
}

TEST(Time, FromSecondsRoundTrip) {
  EXPECT_EQ(Duration::from_seconds(1.5).count_nanos(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(-0.25).count_nanos(), -250'000'000);
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t = TimePoint::from_nanos(1000);
  EXPECT_EQ((t + Duration::nanos(500)).nanos_since_origin(), 1500);
  EXPECT_EQ(((t + Duration::nanos(500)) - t).count_nanos(), 500);
  EXPECT_LT(t, TimePoint::max());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_after(Duration::seconds(3), [&] { order.push_back(3); });
  sched.schedule_after(Duration::seconds(1), [&] { order.push_back(1); });
  sched.schedule_after(Duration::seconds(2), [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_after(Duration::seconds(1), [&order, i] { order.push_back(i); });
  }
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler sched;
  TimePoint seen{};
  sched.schedule_after(Duration::seconds(5), [&] { seen = sched.now(); });
  sched.run_all();
  EXPECT_EQ(seen.nanos_since_origin(), Duration::seconds(5).count_nanos());
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_after(Duration::seconds(1), [&] { ++fired; });
  sched.schedule_after(Duration::seconds(10), [&] { ++fired; });
  sched.run_until(TimePoint{} + Duration::seconds(5));
  EXPECT_EQ(fired, 1);
  // Clock parked at the deadline even with work pending later.
  EXPECT_EQ(sched.now().nanos_since_origin(), Duration::seconds(5).count_nanos());
  sched.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  auto h = sched.schedule_after(Duration::seconds(1), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sched.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, ReentrantScheduling) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.schedule_after(Duration::seconds(1), recurse);
  };
  sched.schedule_after(Duration::seconds(1), recurse);
  sched.run_all();
  EXPECT_EQ(depth, 5);
}

TEST(Scheduler, StepRunsExactlyOne) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_after(Duration::seconds(1), [&] { ++fired; });
  sched.schedule_after(Duration::seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, ExecutedCountExcludesCancelled) {
  Scheduler sched;
  auto h = sched.schedule_after(Duration::seconds(1), [] {});
  sched.schedule_after(Duration::seconds(2), [] {});
  h.cancel();
  sched.run_all();
  EXPECT_EQ(sched.executed_events(), 1u);
}

TEST(Timer, ReArmCancelsPrevious) {
  Scheduler sched;
  Timer t(sched);
  int a = 0, b = 0;
  t.arm(Duration::seconds(1), [&] { ++a; });
  t.arm(Duration::seconds(2), [&] { ++b; });
  sched.run_all();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

TEST(Timer, DestructionCancels) {
  Scheduler sched;
  int fired = 0;
  {
    Timer t(sched);
    t.arm(Duration::seconds(1), [&] { ++fired; });
  }
  sched.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, MoveTransfersOwnership) {
  Scheduler sched;
  int fired = 0;
  Timer a(sched);
  a.arm(Duration::seconds(1), [&] { ++fired; });
  Timer b = std::move(a);
  EXPECT_TRUE(b.pending());
  sched.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTimer, FiresRepeatedly) {
  Scheduler sched;
  PeriodicTimer t(sched);
  int fired = 0;
  t.start(Duration::seconds(1), [&] { ++fired; });
  sched.run_until(TimePoint{} + Duration::from_seconds(5.5));
  EXPECT_EQ(fired, 5);
  t.stop();
  sched.run_until(TimePoint{} + Duration::seconds(10));
  EXPECT_EQ(fired, 5);
}

TEST(PeriodicTimer, CallbackMayStopSafely) {
  Scheduler sched;
  PeriodicTimer t(sched);
  int fired = 0;
  t.start(Duration::seconds(1), [&] {
    if (++fired == 3) t.stop();
  });
  sched.run_until(TimePoint{} + Duration::seconds(100));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(PeriodicTimer, InitialDelayRespected) {
  Scheduler sched;
  PeriodicTimer t(sched);
  std::vector<double> at;
  t.start(Duration::seconds(10), Duration::seconds(2),
          [&] { at.push_back(sched.now().to_seconds()); });
  sched.run_until(TimePoint{} + Duration::seconds(15));
  ASSERT_EQ(at.size(), 3u);
  EXPECT_DOUBLE_EQ(at[0], 10.0);
  EXPECT_DOUBLE_EQ(at[1], 12.0);
  EXPECT_DOUBLE_EQ(at[2], 14.0);
}

TEST(Lifecycle, AlternatesCrashAndRecovery) {
  Scheduler sched;
  Rng rng(42);
  CrashRecoveryProcess::Config cfg;
  cfg.mttf = Duration::seconds(100);
  cfg.mttr = Duration::seconds(10);
  CrashRecoveryProcess proc(sched, rng, cfg);
  int crashes = 0, recoveries = 0;
  proc.start([&] { ++crashes; }, [&] { ++recoveries; });
  sched.run_until(TimePoint{} + Duration::seconds(5000));
  EXPECT_GT(crashes, 10);
  EXPECT_TRUE(crashes == recoveries || crashes == recoveries + 1);
}

TEST(Lifecycle, StationaryAvailabilityFormula) {
  Scheduler sched;
  CrashRecoveryProcess proc(sched, Rng(1),
                            {Duration::seconds(90), Duration::seconds(10)});
  EXPECT_DOUBLE_EQ(proc.stationary_availability(), 0.9);
}

TEST(Lifecycle, MeasuredAvailabilityMatchesStationary) {
  Scheduler sched;
  CrashRecoveryProcess proc(sched, Rng(7),
                            {Duration::seconds(90), Duration::seconds(10)});
  proc.start(nullptr, nullptr);
  // Sample the up flag every second for a long run.
  std::int64_t up = 0, total = 0;
  PeriodicTimer sampler(sched);
  sampler.start(Duration::seconds(1), [&] {
    ++total;
    if (proc.up()) ++up;
  });
  sched.run_until(TimePoint{} + Duration::seconds(200000));
  EXPECT_NEAR(static_cast<double>(up) / static_cast<double>(total), 0.9, 0.02);
}

TEST(Scheduler, EventObserverSeesEveryExecutedEvent) {
  Scheduler sched;
  std::vector<std::int64_t> observed_at;  // clock value at each observation
  sched.set_event_observer([&] {
    observed_at.push_back((sched.now() - TimePoint{}).count_nanos());
  });
  int fired = 0;
  for (int i = 1; i <= 4; ++i) {
    sched.schedule_after(Duration::seconds(i), [&] { ++fired; });
  }
  sched.run_all();
  EXPECT_EQ(fired, 4);
  // One observation per executed event, with the clock still at the event's
  // time — this is the hook the chaos invariant oracle audits from.
  ASSERT_EQ(observed_at.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(observed_at[static_cast<std::size_t>(i)],
              Duration::seconds(i + 1).count_nanos());
  }
  EXPECT_EQ(sched.executed_events(), 4u);

  sched.set_event_observer(nullptr);  // clearing must be safe
  sched.schedule_after(Duration::seconds(1), [&] { ++fired; });
  sched.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(observed_at.size(), 4u);
}

}  // namespace
}  // namespace wan::sim
