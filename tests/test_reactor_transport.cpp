// ReactorTransport tests: the epoll + recvmmsg/sendmmsg backend must match
// UdpTransport observable-for-observable — delivery onto the destination
// loop, round trips, one-way inbound blocking, labelled send-path drops,
// idempotent shutdown — while adding the batched-I/O behaviors worth pinning
// directly: bursts larger than one syscall batch all arrive, and a recvmmsg
// batch mixing valid frames with garbage rejects per-frame (each reject in
// its labelled counter, every valid neighbour still delivered). The
// deterministic fault plan (socket_base.hpp) is exercised here at the
// transport layer: same plan + same arrival sequence -> same losses, run to
// run; duplication doubles deliveries; reordering swaps adjacent frames.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/codec.hpp"
#include "obs/metrics.hpp"
#include "proto/messages.hpp"
#include "proto/wire.hpp"
#include "runtime/reactor_transport.hpp"
#include "runtime/threaded_env.hpp"
#include "runtime/udp_transport.hpp"

namespace wan::runtime {
namespace {

bool eventually(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::uint64_t drop_count(const char* reason) {
  return obs::Registry::global()
      .counter(std::string("wan_udp_drops_total{reason=\"") + reason + "\"}")
      .value();
}

std::unique_ptr<ReactorTransport> make_transport() {
  EnvOptions opts;
  opts.listen = "127.0.0.1:0";
  std::string error;
  auto t = ReactorTransport::create(opts, &error);
  EXPECT_NE(t, nullptr) << error;
  return t;
}

/// Two nodes' worth of plumbing on two reactor sockets, cross-wired.
struct Pair {
  Pair() {
    proto::register_wire_messages();
    a = make_transport();
    b = make_transport();
    a->add_peer(HostId(2), NodeAddress{"127.0.0.1", b->local_port()});
    b->add_peer(HostId(1), NodeAddress{"127.0.0.1", a->local_port()});
    env_a = std::make_unique<ThreadedEnv>(*a);
    env_b = std::make_unique<ThreadedEnv>(*b);
  }
  ~Pair() {
    a->shutdown();
    b->shutdown();
  }

  std::unique_ptr<ReactorTransport> a, b;
  std::unique_ptr<ThreadedEnv> env_a, env_b;
};

/// One receiving node plus a raw sender socket, for injecting arbitrary
/// datagrams (garbage, hand-built frames, fault-plan probes) from outside
/// any transport.
struct RawSenderRig {
  explicit RawSenderRig(const FaultPlan* plan = nullptr) {
    proto::register_wire_messages();
    transport = make_transport();
    if (plan != nullptr) transport->set_fault_plan(*plan);
    env = std::make_unique<ThreadedEnv>(*transport);
    env->transport().register_endpoint(
        HostId(2), [this](HostId, const net::MessagePtr& msg) {
          const std::lock_guard<std::mutex> lock(mu);
          seqs.push_back(
              static_cast<const proto::HeartbeatPing&>(*msg).seq);
        });
    send_fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    EXPECT_GE(send_fd, 0);
    std::memset(&dest, 0, sizeof dest);
    dest.sin_family = AF_INET;
    dest.sin_port = htons(transport->local_port());
    dest.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  ~RawSenderRig() {
    if (send_fd >= 0) ::close(send_fd);
    transport->shutdown();
  }

  void send_raw(const std::vector<std::uint8_t>& bytes) {
    const auto sent =
        ::sendto(send_fd, bytes.data(), bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dest), sizeof dest);
    EXPECT_EQ(static_cast<std::size_t>(sent), bytes.size());
  }

  /// A valid frame carrying HeartbeatPing{app, seq} from host 1 to host 2.
  static std::vector<std::uint8_t> ping_frame(std::uint64_t seq) {
    const auto msg = net::make_message<proto::HeartbeatPing>(AppId(1), seq);
    const auto frame =
        net::CodecRegistry::global().encode(HostId(1), HostId(2), *msg);
    EXPECT_TRUE(frame.has_value());
    return frame.value_or(std::vector<std::uint8_t>{});
  }

  std::size_t delivered() {
    const std::lock_guard<std::mutex> lock(mu);
    return seqs.size();
  }
  std::vector<std::uint64_t> delivered_seqs() {
    const std::lock_guard<std::mutex> lock(mu);
    return seqs;
  }

  std::unique_ptr<ReactorTransport> transport;
  std::unique_ptr<ThreadedEnv> env;
  std::mutex mu;
  std::vector<std::uint64_t> seqs;
  int send_fd = -1;
  sockaddr_in dest{};
};

// ------------------------------------------------- UdpTransport parity

TEST(ReactorTransport, DeliversAcrossRealSockets) {
  Pair pair;
  std::atomic<int> received{0};
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint32_t> from_value{0};
  pair.env_b->transport().register_endpoint(
      HostId(2), [&](HostId from, const net::MessagePtr& msg) {
        from_value = from.value();
        seq = static_cast<const proto::HeartbeatPing&>(*msg).seq;
        received.fetch_add(1);
      });
  pair.env_a->transport().register_endpoint(
      HostId(1), [](HostId, const net::MessagePtr&) {});

  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(7), 4242));
  });
  ASSERT_TRUE(eventually([&] { return received.load() == 1; }));
  EXPECT_EQ(from_value.load(), 1u);
  EXPECT_EQ(seq.load(), 4242u);
}

TEST(ReactorTransport, RoundTripRequestReply) {
  Pair pair;
  std::atomic<int> replies{0};
  pair.env_b->transport().register_endpoint(
      HostId(2), [&](HostId from, const net::MessagePtr& msg) {
        const auto& ping = static_cast<const proto::HeartbeatPing&>(*msg);
        pair.env_b->transport().send(
            HostId(2), from,
            net::make_message<proto::HeartbeatPong>(ping.app, ping.seq));
      });
  pair.env_a->transport().register_endpoint(
      HostId(1), [&](HostId, const net::MessagePtr& msg) {
        if (static_cast<const proto::HeartbeatPong&>(*msg).seq == 5) {
          replies.fetch_add(1);
        }
      });
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 5));
  });
  ASSERT_TRUE(eventually([&] { return replies.load() == 1; }));
}

TEST(ReactorTransport, BlockInboundFromDropsOneDirectionOnly) {
  Pair pair;
  std::atomic<int> at_b{0};
  std::atomic<int> at_a{0};
  pair.env_b->transport().register_endpoint(
      HostId(2), [&](HostId, const net::MessagePtr&) { at_b.fetch_add(1); });
  pair.env_a->transport().register_endpoint(
      HostId(1), [&](HostId, const net::MessagePtr&) { at_a.fetch_add(1); });

  const std::uint64_t blocked_before = drop_count("blocked");
  pair.b->block_inbound_from(HostId(1), true);
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 1));
  });
  ASSERT_TRUE(
      eventually([&] { return drop_count("blocked") > blocked_before; }));
  EXPECT_EQ(at_b.load(), 0);

  pair.env_b->run_sync([&] {
    pair.env_b->transport().send(
        HostId(2), HostId(1),
        net::make_message<proto::HeartbeatPong>(AppId(1), 2));
  });
  ASSERT_TRUE(eventually([&] { return at_a.load() == 1; }));

  pair.b->block_inbound_from(HostId(1), false);
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 3));
  });
  ASSERT_TRUE(eventually([&] { return at_b.load() == 1; }));
}

TEST(ReactorTransport, SendPathDropReasonsAreCounted) {
  Pair pair;
  pair.env_a->transport().register_endpoint(
      HostId(1), [](HostId, const net::MessagePtr&) {});

  const std::uint64_t unknown_before = drop_count("unknown_dest");
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(77),
        net::make_message<proto::HeartbeatPing>(AppId(1), 1));
  });
  EXPECT_EQ(drop_count("unknown_dest"), unknown_before + 1);

  const std::uint64_t down_before = drop_count("endpoint_down");
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(99), HostId(2),
        net::make_message<proto::HeartbeatPing>(AppId(1), 1));
  });
  EXPECT_EQ(drop_count("endpoint_down"), down_before + 1);

  const std::uint64_t oversize_before = drop_count("oversize");
  pair.env_a->run_sync([&] {
    pair.env_a->transport().send(
        HostId(1), HostId(2),
        net::make_message<proto::InvokeRequest>(
            AppId(1), UserId(2), 3, 4, auth::Signature{5},
            std::string(net::kMaxFrameSize, 'x'), 6));
  });
  EXPECT_EQ(drop_count("oversize"), oversize_before + 1);
}

TEST(ReactorTransport, CreateRejectsBadOptions) {
  proto::register_wire_messages();
  {
    EnvOptions opts;
    opts.listen = "not-an-address";
    std::string error;
    EXPECT_EQ(ReactorTransport::create(opts, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
  {
    EnvOptions opts;
    opts.listen = "127.0.0.1:0";
    opts.topology_path = "/nonexistent/topology.txt";
    std::string error;
    EXPECT_EQ(ReactorTransport::create(opts, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
}

TEST(ReactorTransport, ShutdownIsIdempotentAndStopsEnvs) {
  auto t = make_transport();
  auto env = std::make_unique<ThreadedEnv>(*t);
  env->transport().register_endpoint(HostId(1),
                                     [](HostId, const net::MessagePtr&) {});
  t->shutdown();
  t->shutdown();  // second call must be a no-op
  env.reset();
}

// --------------------------------------------------- batched-I/O behavior

// A burst several times kBatch wide: sendmmsg flushes it in batches, the
// receive side drains with recvmmsg across multiple partial batches, and
// every frame arrives exactly once.
TEST(ReactorTransport, BurstLargerThanOneBatchAllArrives) {
  Pair pair;
  constexpr int kFrames = static_cast<int>(ReactorTransport::kBatch) * 5;
  std::mutex mu;
  std::set<std::uint64_t> seen;
  pair.env_b->transport().register_endpoint(
      HostId(2), [&](HostId, const net::MessagePtr& msg) {
        const std::lock_guard<std::mutex> lock(mu);
        seen.insert(static_cast<const proto::HeartbeatPing&>(*msg).seq);
      });
  pair.env_a->transport().register_endpoint(
      HostId(1), [](HostId, const net::MessagePtr&) {});

  pair.env_a->run_sync([&] {
    for (int i = 0; i < kFrames; ++i) {
      pair.env_a->transport().send(
          HostId(1), HostId(2),
          net::make_message<proto::HeartbeatPing>(
              AppId(1), static_cast<std::uint64_t>(i)));
    }
  });
  ASSERT_TRUE(eventually([&] {
    const std::lock_guard<std::mutex> lock(mu);
    return seen.size() == static_cast<std::size_t>(kFrames);
  }));
  const std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), static_cast<std::uint64_t>(kFrames - 1));
}

// One recvmmsg batch mixing valid frames with every reject class: rejects
// are per-frame (each lands in its labelled counter) and never poison the
// valid frames around them.
TEST(ReactorTransport, PartialBatchRejectsGarbagePerFrame) {
  RawSenderRig rig;
  const std::uint64_t bad_magic_before = drop_count("bad_magic");
  const std::uint64_t truncated_before = drop_count("truncated");
  const std::uint64_t unknown_before = drop_count("unknown_tag");

  const auto valid = RawSenderRig::ping_frame(1);
  std::vector<std::uint8_t> truncated(valid.begin(), valid.begin() + 5);
  std::vector<std::uint8_t> bad_magic(net::kWireHeaderSize, 0x41);
  auto unknown_tag = valid;
  const std::uint16_t tag = 999;
  std::memcpy(unknown_tag.data() + 4, &tag, sizeof tag);

  // Interleave so garbage sits between valid frames inside one batch.
  rig.send_raw(RawSenderRig::ping_frame(10));
  rig.send_raw(truncated);
  rig.send_raw(RawSenderRig::ping_frame(11));
  rig.send_raw(bad_magic);
  rig.send_raw(RawSenderRig::ping_frame(12));
  rig.send_raw(unknown_tag);
  rig.send_raw(RawSenderRig::ping_frame(13));

  ASSERT_TRUE(eventually([&] { return rig.delivered() == 4; }));
  EXPECT_EQ(rig.delivered_seqs(),
            (std::vector<std::uint64_t>{10, 11, 12, 13}));
  EXPECT_TRUE(eventually([&] {
    return drop_count("bad_magic") == bad_magic_before + 1 &&
           drop_count("truncated") == truncated_before + 1 &&
           drop_count("unknown_tag") == unknown_before + 1;
  }));
  // Nothing more trickles in late.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(rig.delivered(), 4u);
}

// ------------------------------------------------ deterministic fault plan

// Same plan, same arrival sequence, fresh transport: the seeded fault
// stream makes identical drop decisions, so the surviving seq sets match
// exactly run to run.
TEST(ReactorTransport, InjectedLossIsDeterministicAcrossRuns) {
  constexpr int kFrames = 100;
  FaultPlan plan;
  plan.seed = 99;
  plan.loss = 0.4;

  auto run_once = [&](std::vector<std::uint64_t>* survivors,
                      std::uint64_t* lost) {
    RawSenderRig rig(&plan);
    const std::uint64_t lost_before = drop_count("injected_loss");
    for (int i = 0; i < kFrames; ++i) {
      rig.send_raw(RawSenderRig::ping_frame(static_cast<std::uint64_t>(i)));
    }
    // Every frame is either delivered or counted as an injected loss.
    ASSERT_TRUE(eventually([&] {
      return rig.delivered() + (drop_count("injected_loss") - lost_before) >=
             static_cast<std::size_t>(kFrames);
    }));
    *survivors = rig.delivered_seqs();
    *lost = drop_count("injected_loss") - lost_before;
  };

  std::vector<std::uint64_t> survivors_a, survivors_b;
  std::uint64_t lost_a = 0, lost_b = 0;
  run_once(&survivors_a, &lost_a);
  run_once(&survivors_b, &lost_b);
  EXPECT_EQ(survivors_a, survivors_b);
  EXPECT_EQ(lost_a, lost_b);
  EXPECT_GT(lost_a, 0u);
  EXPECT_LT(lost_a, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(survivors_a.size() + lost_a, static_cast<std::size_t>(kFrames));
}

TEST(ReactorTransport, DuplicatePlanDeliversEveryFrameTwice) {
  FaultPlan plan;
  plan.seed = 3;
  plan.duplicate = 1.0;
  RawSenderRig rig(&plan);
  for (std::uint64_t i = 0; i < 5; ++i) {
    rig.send_raw(RawSenderRig::ping_frame(i));
  }
  ASSERT_TRUE(eventually([&] { return rig.delivered() == 10; }));
  EXPECT_EQ(rig.delivered_seqs(),
            (std::vector<std::uint64_t>{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}));
}

TEST(ReactorTransport, ReorderPlanSwapsAdjacentFrames) {
  FaultPlan plan;
  plan.seed = 5;
  plan.reorder = 1.0;
  RawSenderRig rig(&plan);
  rig.send_raw(RawSenderRig::ping_frame(1));
  // Let the first frame arrive (and be held) before the second is sent, so
  // the arrival order is fixed and the swap is unambiguous.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rig.send_raw(RawSenderRig::ping_frame(2));
  ASSERT_TRUE(eventually([&] { return rig.delivered() == 2; }));
  EXPECT_EQ(rig.delivered_seqs(), (std::vector<std::uint64_t>{2, 1}));
}

// The fault plan lives in SocketTransport, so the thread-per-direction
// backend honors the identical contract — spot-check duplication there.
TEST(UdpTransportFaults, DuplicatePlanAppliesToUdpBackendToo) {
  proto::register_wire_messages();
  EnvOptions opts;
  opts.listen = "127.0.0.1:0";
  std::string error;
  auto t = UdpTransport::create(opts, &error);
  ASSERT_NE(t, nullptr) << error;
  FaultPlan plan;
  plan.seed = 3;
  plan.duplicate = 1.0;
  t->set_fault_plan(plan);
  auto env = std::make_unique<ThreadedEnv>(*t);
  std::atomic<int> got{0};
  env->transport().register_endpoint(
      HostId(2), [&](HostId, const net::MessagePtr&) { got.fetch_add(1); });
  t->add_peer(HostId(2), NodeAddress{"127.0.0.1", t->local_port()});
  env->run_sync([&] {
    env->transport().send(HostId(2), HostId(2),
                          net::make_message<proto::HeartbeatPing>(AppId(1), 1));
  });
  ASSERT_TRUE(eventually([&] { return got.load() == 2; }));
  t->shutdown();
}

}  // namespace
}  // namespace wan::runtime
