// Cross-process trace plumbing: WANTRACE round-trips, anchored-clock merge
// math, causal chain stats over multi-process streams, the TeProbe audit on
// a merged stream, and the flight recorder's survive-SIGKILL contract (a
// forked child is killed mid-flight and its final events are harvested from
// the mmap'd ring).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/te_probe.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"

namespace wan {
namespace {

using obs::FlightRecorder;
using obs::MergedTrace;
using obs::ProcessTrace;
using obs::SpanKind;
using obs::TeProbe;
using obs::TraceEvent;
using obs::TraceKind;

std::string make_temp_dir() {
  char tmpl[] = "/tmp/wan_trace_io_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string{} : std::string{dir};
}

ProcessTrace::Event event(obs::TraceId trace, std::int64_t at_nanos,
                          std::string name, std::uint32_t node, SpanKind kind,
                          std::int64_t a0 = 0, std::int64_t a1 = 0) {
  ProcessTrace::Event e;
  e.trace = trace;
  e.at_nanos = at_nanos;
  e.name = std::move(name);
  e.node = node;
  e.kind = kind;
  e.a0 = a0;
  e.a1 = a1;
  return e;
}

// ------------------------------------------------------------ WANTRACE v1

TEST(TraceIo, WantraceRoundTripPreservesEveryField) {
  const std::string dir = make_temp_dir();
  ProcessTrace pt;
  pt.label = "manager-7";
  pt.node = 7;
  pt.anchor_runtime_ns = 123456789;
  pt.anchor_wall_us = 1722000000123456;
  pt.from_flight_recorder = true;
  pt.dropped = 42;
  const obs::TraceId check = obs::mint(TraceKind::kCheck, HostId(7), 1);
  const obs::TraceId update = obs::mint(TraceKind::kUpdate, HostId(3), 9);
  pt.events.push_back(
      event(check, 1000, "check.begin", 7, SpanKind::kBegin, 55, -1));
  pt.events.push_back(event(update, 2500, "update.quorum", 7,
                            SpanKind::kDecision, 55, 1));
  pt.events.push_back(event(0, 3000, "rel.rtt", 7, SpanKind::kTimer, 9,
                            INT64_C(-9223372036854775807)));

  const std::string path = dir + "/manager-7.trace";
  std::string error;
  ASSERT_TRUE(obs::write_process_trace(path, pt, &error)) << error;
  const auto back = obs::load_process_trace(path, &error);
  ASSERT_TRUE(back.has_value()) << error;

  EXPECT_EQ(back->label, pt.label);
  EXPECT_EQ(back->node, pt.node);
  EXPECT_EQ(back->anchor_runtime_ns, pt.anchor_runtime_ns);
  EXPECT_EQ(back->anchor_wall_us, pt.anchor_wall_us);
  EXPECT_EQ(back->from_flight_recorder, pt.from_flight_recorder);
  EXPECT_EQ(back->dropped, pt.dropped);
  ASSERT_EQ(back->events.size(), pt.events.size());
  for (std::size_t i = 0; i < pt.events.size(); ++i) {
    EXPECT_EQ(back->events[i].trace, pt.events[i].trace) << i;
    EXPECT_EQ(back->events[i].at_nanos, pt.events[i].at_nanos) << i;
    EXPECT_EQ(back->events[i].name, pt.events[i].name) << i;
    EXPECT_EQ(back->events[i].node, pt.events[i].node) << i;
    EXPECT_EQ(back->events[i].kind, pt.events[i].kind) << i;
    EXPECT_EQ(back->events[i].a0, pt.events[i].a0) << i;
    EXPECT_EQ(back->events[i].a1, pt.events[i].a1) << i;
  }
}

TEST(TraceIo, LoadRejectsGarbage) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/garbage.trace";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("NOT A TRACE\n", f);
  std::fclose(f);
  std::string error;
  EXPECT_FALSE(obs::load_process_trace(path, &error).has_value());
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------- anchored merging

// Two processes whose runtime clocks started 5 ms apart: the anchors must
// cancel the offset so merge order follows wall time, not raw at_nanos.
TEST(TraceIo, MergeAlignsDifferentEpochsOntoOneTimeline) {
  ProcessTrace a;
  a.label = "a";
  a.node = 1;
  a.anchor_runtime_ns = 0;
  a.anchor_wall_us = 1000000;  // runtime 0 == wall 1.0 s
  ProcessTrace b;
  b.label = "b";
  b.node = 2;
  b.anchor_runtime_ns = 0;
  b.anchor_wall_us = 1005000;  // forked 5 ms later

  // Raw at_nanos says b's event is earlier (1 ms < 8 ms); on the wall it is
  // later (1006.0 ms vs 1009.0... no: a @ wall 1.0s+8ms = 1008ms, b @ wall
  // 1005ms+1ms = 1006ms -> b first).
  a.events.push_back(event(0, 8000000, "late.on.wall", 1, SpanKind::kInstant));
  b.events.push_back(event(0, 1000000, "early.on.wall", 2, SpanKind::kInstant));

  const MergedTrace m = obs::merge_traces({a, b});
  ASSERT_EQ(m.events.size(), 2u);
  EXPECT_EQ(m.at(m.events[0]).name, "early.on.wall");
  EXPECT_EQ(m.at(m.events[1]).name, "late.on.wall");
  EXPECT_DOUBLE_EQ(m.base_wall_us, 1006000.0);
  EXPECT_DOUBLE_EQ(m.events[1].wall_us - m.events[0].wall_us, 2000.0);

  // analysis_events re-bases onto nanos since the earliest event.
  const std::vector<TraceEvent> ev = obs::analysis_events(m);
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].at_nanos, 0);
  EXPECT_EQ(ev[1].at_nanos, 2000000);
}

// ------------------------------------------------------------ chain stats

TEST(TraceIo, ChainStatsCountProcessesAndCheckCausalRoot) {
  const obs::TraceId good = obs::mint(TraceKind::kCheck, HostId(100), 1);
  const obs::TraceId bad = obs::mint(TraceKind::kUpdate, HostId(1), 1);

  ProcessTrace host;
  host.label = "host-100";
  host.node = 100;
  host.anchor_wall_us = 0;
  ProcessTrace mgr;
  mgr.label = "manager-1";
  mgr.node = 1;
  mgr.anchor_wall_us = 0;
  ProcessTrace mgr2;
  mgr2.label = "manager-2";
  mgr2.node = 2;
  mgr2.anchor_wall_us = 0;

  // `good`: minted at node 100, whose event is earliest -> root_first, and
  // it touches all three processes.
  host.events.push_back(event(good, 1000, "check.begin", 100, SpanKind::kBegin));
  mgr.events.push_back(event(good, 2000, "query.recv", 1, SpanKind::kRecv));
  mgr2.events.push_back(event(good, 3000, "query.recv", 2, SpanKind::kRecv));
  // `bad`: minted at node 1 but its earliest merged event was recorded by
  // node 2 -> the causal-order check must flag it.
  mgr2.events.push_back(event(bad, 4000, "update.recv", 2, SpanKind::kRecv));
  mgr.events.push_back(event(bad, 5000, "update.quorum", 1,
                             SpanKind::kDecision));

  const MergedTrace m = obs::merge_traces({host, mgr, mgr2});
  const std::vector<obs::ChainStats> chains = obs::chain_stats(m);
  ASSERT_EQ(chains.size(), 2u);

  EXPECT_EQ(chains[0].trace, good);
  EXPECT_EQ(chains[0].kind, TraceKind::kCheck);
  EXPECT_EQ(chains[0].mint_node, 100u);
  EXPECT_EQ(chains[0].proc_count, 3u);
  EXPECT_EQ(chains[0].event_count, 3u);
  EXPECT_TRUE(chains[0].root_first);

  EXPECT_EQ(chains[1].trace, bad);
  EXPECT_EQ(chains[1].mint_node, 1u);
  EXPECT_EQ(chains[1].proc_count, 2u);
  EXPECT_FALSE(chains[1].root_first);
}

// --------------------------------------------- Te audit on a merged stream

// The revocation quorum and the stale allow happen in DIFFERENT processes;
// only the anchor-aligned merged stream can relate their timestamps.
TEST(TraceIo, TeProbeFindsCrossProcessViolationOnMergedStream) {
  constexpr std::int64_t kUser = 55;
  ProcessTrace mgr;
  mgr.label = "manager-0";
  mgr.node = 0;
  mgr.anchor_wall_us = 0;
  // Revoke (a1 = 1) reaches quorum at wall t = 1 ms.
  mgr.events.push_back(event(obs::mint(TraceKind::kUpdate, HostId(0), 1),
                             1000000, "update.quorum", 0, SpanKind::kDecision,
                             kUser, 1));

  ProcessTrace host;
  host.label = "host-100";
  host.node = 100;
  host.anchor_wall_us = 0;
  // Stale cache-hit allow ((1 << 8) | path 0) at wall t = 2.5 s — 2.499 s
  // after the quorum.
  host.events.push_back(event(obs::mint(TraceKind::kCheck, HostId(100), 1),
                              2500000000, "check.decide", 100,
                              SpanKind::kDecision, kUser, (1 << 8) | 0));

  const MergedTrace m = obs::merge_traces({mgr, host});
  const std::vector<TraceEvent> ev = obs::analysis_events(m);

  const obs::TeReport tight = TeProbe::analyze(ev, sim::Duration::seconds(1));
  EXPECT_EQ(tight.revocations, 1u);
  EXPECT_EQ(tight.measured, 1u);
  EXPECT_EQ(tight.violations, 1u);
  EXPECT_NEAR(tight.max_seconds, 2.499, 1e-6);

  const obs::TeReport loose = TeProbe::analyze(ev, sim::Duration::seconds(5));
  EXPECT_EQ(loose.violations, 0u);
  EXPECT_TRUE(loose.ok());
}

// --------------------------------------------------------- flight recorder

// A child process records through the ring and is SIGKILLed while alive; the
// parent harvests the mmap'd file and must recover the child's final events
// (page-cache durability — the kill cannot unwrite an mmap'd store).
TEST(FlightRecorderIo, HarvestRecoversFinalEventsAfterSigkill) {
  const std::string dir = make_temp_dir();
  const std::string ring = dir + "/victim.ring";

  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(ready[0]);
    std::string error;
    auto fr = FlightRecorder::create(ring, /*node=*/3, /*capacity=*/64, &error);
    if (fr == nullptr) ::_exit(3);
    fr->set_identity("victim", /*anchor_runtime_ns=*/111,
                     /*anchor_wall_us=*/222);
    for (int i = 0; i < 5; ++i) {
      TraceEvent e;
      e.trace = obs::mint(TraceKind::kUpdate, HostId(3), 1);
      e.at_nanos = 1000 * (i + 1);
      e.name = "journal.append";
      e.node = 3;
      e.kind = SpanKind::kInstant;
      e.a0 = i;
      fr->record(e);
    }
    // Signal the parent that the ring is written, then wait to be killed.
    const char byte = 'R';
    (void)!::write(ready[1], &byte, 1);
    for (;;) ::pause();
  }

  ::close(ready[1]);
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);
  ::close(ready[0]);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  std::string error;
  const auto h = FlightRecorder::harvest(ring, &error);
  ASSERT_TRUE(h.has_value()) << error;
  EXPECT_EQ(h->label, "victim");
  EXPECT_EQ(h->node, 3u);
  EXPECT_EQ(h->anchor_runtime_ns, 111);
  EXPECT_EQ(h->anchor_wall_us, 222);
  EXPECT_EQ(h->total_recorded, 5u);
  ASSERT_EQ(h->events.size(), 5u);
  // The LAST event the victim wrote before dying is present and intact.
  EXPECT_EQ(h->events.back().name, "journal.append");
  EXPECT_EQ(h->events.back().a0, 4);
  EXPECT_EQ(h->events.back().at_nanos, 5000);

  // Harvested rings convert to a ProcessTrace that merges like any other.
  const ProcessTrace pt = obs::from_harvest(*h, "victim-killed");
  EXPECT_TRUE(pt.from_flight_recorder);
  EXPECT_EQ(pt.events.size(), 5u);
  const MergedTrace m = obs::merge_traces({pt});
  EXPECT_EQ(m.events.size(), 5u);
}

// Wrap-around: a ring of capacity 8 fed 20 events keeps the newest 8 and
// reports the rest as recorded-then-overwritten.
TEST(FlightRecorderIo, WrapKeepsNewestEvents) {
  const std::string dir = make_temp_dir();
  const std::string ring = dir + "/wrap.ring";
  std::string error;
  {
    auto fr = FlightRecorder::create(ring, /*node=*/1, /*capacity=*/8, &error);
    ASSERT_NE(fr, nullptr) << error;
    fr->set_identity("wrap", 0, 0);
    for (int i = 0; i < 20; ++i) {
      TraceEvent e;
      e.at_nanos = i;
      e.name = "tick";
      e.node = 1;
      e.kind = SpanKind::kInstant;
      e.a0 = i;
      fr->record(e);
    }
    EXPECT_EQ(fr->recorded(), 20u);
  }  // unmapped; the file stays
  const auto h = FlightRecorder::harvest(ring, &error);
  ASSERT_TRUE(h.has_value()) << error;
  EXPECT_EQ(h->total_recorded, 20u);
  ASSERT_EQ(h->events.size(), 8u);
  for (std::size_t i = 0; i < h->events.size(); ++i) {
    EXPECT_EQ(h->events[i].a0, static_cast<std::int64_t>(12 + i));
  }
}

}  // namespace
}  // namespace wan
