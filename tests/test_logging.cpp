// Unit tests for the logging facility (level gating, custom sinks, the
// simulation-time prefix).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/logging.hpp"

namespace wan::log {
namespace {

struct LogFixture : ::testing::Test {
  std::vector<std::pair<Level, std::string>> lines;

  void SetUp() override {
    set_sink([this](Level lvl, const std::string& line) {
      lines.emplace_back(lvl, line);
    });
  }
  void TearDown() override {
    reset_sink();
    set_level(Level::kOff);
    clear_time_source();
  }
};

TEST_F(LogFixture, OffByDefaultDiscardsEverything) {
  set_level(Level::kOff);
  WAN_ERROR << "nobody hears this";
  EXPECT_TRUE(lines.empty());
}

TEST_F(LogFixture, LevelGateFiltersBelow) {
  set_level(Level::kWarn);
  WAN_DEBUG << "too quiet";
  WAN_INFO << "still too quiet";
  WAN_WARN << "audible";
  WAN_ERROR << "loud";
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, Level::kWarn);
  EXPECT_EQ(lines[1].first, Level::kError);
}

TEST_F(LogFixture, MessagesCarryLevelTag) {
  set_level(Level::kTrace);
  WAN_INFO << "payload " << 42;
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].second.find("[INFO ]"), std::string::npos);
  EXPECT_NE(lines[0].second.find("payload 42"), std::string::npos);
}

TEST_F(LogFixture, TimeSourcePrefixesSimTime) {
  set_level(Level::kInfo);
  set_time_source([] { return 12.5; });
  WAN_INFO << "tick";
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].second.find("t=12.5"), std::string::npos);
  clear_time_source();
  WAN_INFO << "tock";
  EXPECT_EQ(lines[1].second.find("t="), std::string::npos);
}

TEST_F(LogFixture, StreamingFormatsArbitraryTypes) {
  set_level(Level::kTrace);
  WAN_TRACE << 1 << ' ' << 2.5 << ' ' << std::string("three");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].second.find("1 2.5 three"), std::string::npos);
}

}  // namespace
}  // namespace wan::log
