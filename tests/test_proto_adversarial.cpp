// Adversarial behaviour: the paper's model authenticates manager traffic and
// makes non-manager hosts untrusted ("other hosts can experience any type of
// failure ... including a malicious adversary gaining control of a host").
// These tests drive spoofed protocol messages from non-manager endpoints and
// assert they are ignored.
#include <gtest/gtest.h>

#include <optional>

#include "workload/scenario.hpp"

namespace wan {
namespace {

using proto::AccessDecision;
using proto::DecisionPath;
using sim::Duration;
using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig adversary_config() {
  ScenarioConfig cfg;
  cfg.managers = 3;
  cfg.app_hosts = 2;
  cfg.users = 3;
  cfg.partitions = ScenarioConfig::Partitions::kScripted;
  cfg.constant_latency = true;
  cfg.const_latency = Duration::millis(10);
  cfg.protocol.check_quorum = 2;
  cfg.protocol.Te = Duration::seconds(60);
  cfg.protocol.max_attempts = 2;
  cfg.protocol.query_timeout = Duration::seconds(1);
  cfg.seed = 666;
  return cfg;
}

// Registers a mute attacker endpoint on the network.
HostId add_attacker(Scenario& s) {
  const HostId attacker(424242);
  s.network().register_host(attacker, [](HostId, const net::MessagePtr&) {});
  return attacker;
}

TEST(Adversarial, SpoofedRevokeNotifyDoesNotFlushCache) {
  Scenario s(adversary_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  s.check(0, s.user(0));
  s.run_for(Duration::seconds(2));
  ASSERT_EQ(s.host(0).controller().cache(s.app())->size(), 1u);

  const HostId attacker = add_attacker(s);
  s.network().send(attacker, s.host_ids()[0],
                   net::make_message<proto::RevokeNotify>(
                       s.app(), s.user(0), acl::Version{999, attacker}));
  s.run_for(Duration::seconds(2));
  // A genuine manager's notify would have flushed; the spoof must not.
  EXPECT_EQ(s.host(0).controller().cache(s.app())->size(), 1u);
}

TEST(Adversarial, SpoofedQueryResponseCannotGrantAccess) {
  Scenario s(adversary_config());
  // Managers unreachable: only the attacker will "answer".
  for (const HostId m : s.manager_ids()) {
    s.scripted().cut_link(s.host_ids()[0], m);
  }
  const HostId attacker = add_attacker(s);

  std::optional<AccessDecision> d;
  s.check(0, s.user(0), [&](const AccessDecision& dec) { d = dec; });
  // Flood forged "granted" responses over the plausible query-id range.
  acl::RightSet rights(acl::Right::kUse);
  for (std::uint64_t qid = 1; qid <= 64; ++qid) {
    s.network().send(attacker, s.host_ids()[0],
                     net::make_message<proto::QueryResponse>(
                         s.app(), s.user(0), qid, rights,
                         acl::Version{1000 + qid, attacker},
                         Duration::seconds(60)));
    s.network().send(attacker, s.host_ids()[0],
                     net::make_message<proto::QueryResponse>(
                         s.app(), s.user(0), qid, rights,
                         acl::Version{2000 + qid, attacker},
                         Duration::seconds(60)));
  }
  s.run_for(Duration::seconds(10));
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->allowed);
  EXPECT_EQ(d->path, DecisionPath::kUnverifiableDeny);
  EXPECT_EQ(s.host(0).controller().cache(s.app())->size(), 0u);
}

TEST(Adversarial, SpoofedUpdateMsgCannotPoisonManagerStore) {
  Scenario s(adversary_config());
  const HostId attacker = add_attacker(s);
  acl::AclUpdate bogus;
  bogus.user = s.user(1);
  bogus.right = acl::Right::kUse;
  bogus.op = acl::Op::kAdd;
  bogus.version = acl::Version{777, attacker};
  for (const HostId m : s.manager_ids()) {
    s.network().send(attacker, m,
                     net::make_message<proto::UpdateMsg>(s.app(), bogus, 1));
  }
  s.run_for(Duration::seconds(5));
  for (int m = 0; m < s.manager_count(); ++m) {
    EXPECT_FALSE(s.manager(m).manager().store(s.app())->check(s.user(1),
                                                              acl::Right::kUse));
  }
  // And the end-to-end check denies.
  std::optional<AccessDecision> d;
  s.check(0, s.user(1), [&](const AccessDecision& dec) { d = dec; });
  s.run_for(Duration::seconds(5));
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->allowed);
}

TEST(Adversarial, SpoofedSyncResponseCannotSeedRecovery) {
  Scenario s(adversary_config());
  s.manager(0).crash();
  s.run_for(Duration::seconds(1));
  // Keep the genuine peers out of reach so the attacker races alone.
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[1]);
  s.scripted().cut_link(s.manager_ids()[0], s.manager_ids()[2]);
  s.manager(0).recover();
  s.run_for(Duration::seconds(1));

  const HostId attacker = add_attacker(s);
  std::vector<acl::AclUpdate> poisoned{
      {s.user(2), acl::Right::kUse, acl::Op::kAdd, acl::Version{555, attacker}}};
  for (std::uint64_t sync_id = 1; sync_id <= 8; ++sync_id) {
    s.network().send(attacker, s.manager_ids()[0],
                     net::make_message<proto::SyncResponse>(s.app(), sync_id,
                                                            poisoned));
  }
  s.run_for(Duration::seconds(5));
  EXPECT_FALSE(s.manager(0).manager().synced(s.app()));
  EXPECT_FALSE(s.manager(0).manager().store(s.app())->check(s.user(2),
                                                            acl::Right::kUse));
}

TEST(Adversarial, SpoofedHeartbeatsCannotSuppressFreeze) {
  auto cfg = adversary_config();
  cfg.protocol.freeze_enabled = true;
  cfg.protocol.Te = Duration::seconds(120);
  cfg.protocol.Ti = Duration::seconds(20);
  cfg.protocol.heartbeat_period = Duration::seconds(5);
  cfg.protocol.check_quorum = 1;
  Scenario s(cfg);
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));

  s.scripted().isolate(s.manager_ids()[0], s.all_site_ids());
  const HostId attacker = add_attacker(s);
  // Attacker pumps pongs at m1 trying to keep it warm.
  for (int i = 0; i < 20; ++i) {
    s.network().send(attacker, s.manager_ids()[1],
                     net::make_message<proto::HeartbeatPong>(
                         s.app(), static_cast<std::uint64_t>(i)));
    s.run_for(Duration::seconds(2));
  }
  EXPECT_TRUE(s.manager(1).manager().frozen(s.app()));
}

TEST(Adversarial, SpoofedVersionReplyCannotCorruptVersioning) {
  Scenario s(adversary_config());
  const HostId attacker = add_attacker(s);
  // Attacker claims an absurdly high version floor for in-flight reads.
  // Issue an update; race the read phase with forged replies.
  bool done = false;
  s.grant(s.user(0), 0, [&] { done = true; });
  for (std::uint64_t read_id = 1; read_id <= 4; ++read_id) {
    s.network().send(attacker, s.manager_ids()[0],
                     net::make_message<proto::VersionReply>(
                         s.app(), read_id,
                         acl::Version{std::uint64_t{1} << 40, attacker}));
  }
  s.run_for(Duration::seconds(5));
  ASSERT_TRUE(done);
  // The grant's version is small (the forged floor was ignored).
  const auto st = s.manager(0).manager().store(s.app())->state(
      s.user(0), acl::Right::kUse);
  ASSERT_TRUE(st.has_value());
  EXPECT_LT(st->version.counter, 100u);
}

TEST(Adversarial, CompromisedUserIsLockedOutAfterRevoke) {
  // The paper's §2.1 scenario end-to-end: a compromised identity keeps its
  // valid key, but a revocation removes its rights within Te everywhere.
  Scenario s(adversary_config());
  s.grant(s.user(0));
  s.run_for(Duration::seconds(5));
  std::optional<proto::InvokeResult> before;
  s.agent(0).invoke(s.app(), {s.host_ids()[0]}, "steal-data",
                    [&](const proto::InvokeResult& r) { before = r; });
  s.run_for(Duration::seconds(5));
  ASSERT_TRUE(before.has_value());
  EXPECT_TRUE(before->ok);

  s.revoke(s.user(0));
  s.run_for(Duration::seconds(5));
  std::optional<proto::InvokeResult> after;
  s.agent(0).invoke(s.app(), {s.host_ids()[0]}, "steal-more",
                    [&](const proto::InvokeResult& r) { after = r; });
  s.run_for(Duration::seconds(5));
  ASSERT_TRUE(after.has_value());
  EXPECT_FALSE(after->ok);
  EXPECT_EQ(after->reason, proto::DenyReason::kNotAuthorized);
}

}  // namespace
}  // namespace wan
